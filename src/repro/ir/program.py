"""The Pauli IR program: an ordered list of Pauli blocks.

This is the ``<program>`` production of Figure 5.  The semantics (Figure 7)
is the Hermitian operator obtained by *summing* the blocks, so any reordering
of blocks — and of strings within a block — is semantics-preserving.  That
commutativity is the licence the scheduling passes (Section 4) rely on.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from ..pauli import PauliString
from .blocks import PauliBlock, WeightedString, encode_symplectic_rows

__all__ = ["PauliProgram"]


class PauliProgram:
    """An ordered list of :class:`PauliBlock` on a fixed qubit count."""

    def __init__(self, blocks: Iterable[PauliBlock], name: str = ""):
        block_list: List[PauliBlock] = list(blocks)
        if not block_list:
            raise ValueError("a Pauli IR program must contain at least one block")
        n = block_list[0].num_qubits
        for block in block_list:
            if not isinstance(block, PauliBlock):
                raise TypeError(f"expected PauliBlock, got {type(block).__name__}")
            if block.num_qubits != n:
                raise ValueError(
                    "all blocks must act on the same qubit count: "
                    f"{block.num_qubits} vs {n}"
                )
        self._blocks = block_list
        self.name = name
        self._canonical: bytes = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_hamiltonian(
        cls,
        terms: Iterable,
        parameter: float = 1.0,
        name: str = "",
    ) -> "PauliProgram":
        """Build a one-string-per-block program from ``(label|PauliString,
        weight)`` pairs — the plain Trotter-simulation form (Figure 6a).

        ``terms`` may be any iterable, including a generator from the
        scale workload emitters (:mod:`repro.workloads`): terms are
        consumed in one pass and never re-read."""
        blocks = [
            PauliBlock([entry], parameter=parameter) for entry in terms
        ]
        return cls(blocks, name=name)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def blocks(self) -> Tuple[PauliBlock, ...]:
        return tuple(self._blocks)

    @property
    def num_qubits(self) -> int:
        return self._blocks[0].num_qubits

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def num_strings(self) -> int:
        return sum(block.num_strings for block in self._blocks)

    def all_weighted_strings(self) -> Iterator[Tuple[WeightedString, float]]:
        """Yield every ``(weighted_string, block_parameter)`` pair in program
        order."""
        for block in self._blocks:
            for ws in block:
                yield ws, block.parameter

    def release_views(self) -> None:
        """Drop every block's memoized symplectic view (rebuilt lazily).

        The streaming compile path (:mod:`repro.core.streaming`) releases
        views block by block as layers are consumed; this is the coarse
        whole-program variant for callers that keep a large program alive
        after compiling it."""
        for block in self._blocks:
            block.release_view()

    # ------------------------------------------------------------------
    # Semantics (Figure 7)
    # ------------------------------------------------------------------
    def to_hamiltonian(self) -> np.ndarray:
        """Dense matrix semantics: sum over blocks of
        ``parameter * sum_j weight_j * P_j``.  Small ``n`` only."""
        if self.num_qubits > 12:
            raise ValueError("refusing to build a dense Hamiltonian for > 12 qubits")
        dim = 2 ** self.num_qubits
        out = np.zeros((dim, dim), dtype=complex)
        for ws, parameter in self.all_weighted_strings():
            out += parameter * ws.weight * ws.string.to_matrix()
        return out

    def multiset_of_terms(self) -> dict:
        """Multiset ``{(string, weight * parameter): multiplicity}``.

        Two programs with equal multisets have identical IR semantics; the
        scheduling passes must preserve this exactly (tested as an invariant).
        """
        counts: dict = {}
        for ws, parameter in self.all_weighted_strings():
            key = (ws.string, ws.weight * parameter)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def canonical_form(self) -> bytes:
        """Order-insensitive canonical encoding of the program's semantics.

        Concatenates the qubit count with every block's
        :meth:`~repro.ir.blocks.PauliBlock.canonical_bytes`, the block
        encodings themselves sorted bytewise.  Since block order and string
        order are semantically irrelevant (the operator is a sum), two
        programs that are term-reorderings or coefficient-reformattings of
        each other share one canonical form, while semantically distinct
        programs differ.  The serving layer hashes this to content-address
        compilation artifacts; the program ``name`` is deliberately
        excluded (it is metadata, not semantics).

        Programs are immutable, so the encoding is computed once and cached
        (the serving layer re-fingerprints the same program on every
        cache-hit lookup).  All blocks are packed in **one** symplectic
        sweep — per-block packing calls dominate fingerprint latency on
        one-string-per-block Hamiltonians with thousands of terms.
        """
        if self._canonical is None:
            n = self.num_qubits
            codes = np.frombuffer(
                b"".join(
                    ws.string.codes for block in self._blocks for ws in block
                ),
                dtype=np.uint8,
            ).reshape(-1, n)
            coefficients = [
                ws.weight * block.parameter
                for block in self._blocks
                for ws in block
            ]
            encoded = []
            offset = 0
            for block in self._blocks:
                count = block.num_strings
                encoded.append(encode_symplectic_rows(
                    codes[offset:offset + count],
                    coefficients[offset:offset + count],
                ))
                offset += count
            encoded.sort()
            self._canonical = (
                b"pauli-program-v1"
                + struct.pack("<II", n, len(encoded))
                + b"".join(encoded)
            )
        return self._canonical

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_blocks(self, blocks: Sequence[PauliBlock]) -> "PauliProgram":
        return PauliProgram(blocks, name=self.name)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[PauliBlock]:
        return iter(self._blocks)

    def __getitem__(self, index: int) -> PauliBlock:
        return self._blocks[index]

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"PauliProgram{tag}(qubits={self.num_qubits}, "
            f"blocks={self.num_blocks}, strings={self.num_strings})"
        )
