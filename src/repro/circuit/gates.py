"""Gate definitions for the circuit substrate.

The gate zoo covers everything the Paulihedral passes and the baseline
compilers emit:

* single-qubit: ``h``, ``x``, ``y``, ``z``, ``s``, ``sdg``, ``yh`` (the
  self-inverse Y-basis Hadamard ``(Y+Z)/sqrt(2)`` used for Pauli-Y basis
  changes), ``rx``, ``ry``, ``rz``;
* two-qubit: ``cx``, ``cz``, ``swap``.

A :class:`Gate` is an immutable ``(name, qubits, params)`` record.  Matrices
are produced on demand for simulation and equivalence checking.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "Gate",
    "OPCODES",
    "OP",
    "OP_ROTATION",
    "OP_SINGLE",
    "OP_TWO",
    "SINGLE_QUBIT_GATES",
    "TWO_QUBIT_GATES",
    "SELF_INVERSE_GATES",
    "ROTATION_GATES",
    "gate_matrix",
    "matrix_for_op",
    "inverse_gate",
]

_SQRT_HALF = 1.0 / math.sqrt(2.0)

_FIXED_1Q: Dict[str, np.ndarray] = {
    "id": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "h": _SQRT_HALF * np.array([[1, 1], [1, -1]], dtype=complex),
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    # Y-basis Hadamard: (Y + Z)/sqrt(2); self-inverse; maps Y <-> Z.
    "yh": _SQRT_HALF * np.array([[1, -1j], [1j, -1]], dtype=complex),
}

SINGLE_QUBIT_GATES = frozenset(_FIXED_1Q) | {"rx", "ry", "rz"}
TWO_QUBIT_GATES = frozenset({"cx", "cz", "swap"})
SELF_INVERSE_GATES = frozenset({"id", "x", "y", "z", "h", "yh", "cx", "cz", "swap"})
ROTATION_GATES = frozenset({"rx", "ry", "rz"})

_INVERSE_NAME = {"s": "sdg", "sdg": "s"}

# ----------------------------------------------------------------------
# Opcode table for the columnar gate tape.  The tape stores one small int
# per gate instead of a name string; everything keyed by name above has an
# opcode-keyed twin here so hot loops never touch strings.
# ----------------------------------------------------------------------
OPCODES: Tuple[str, ...] = (
    "id", "x", "y", "z", "h", "s", "sdg", "yh", "rx", "ry", "rz",
    "cx", "cz", "swap",
)
OP: Dict[str, int] = {name: code for code, name in enumerate(OPCODES)}
OP_SINGLE = frozenset(OP[name] for name in SINGLE_QUBIT_GATES)
OP_TWO = frozenset(OP[name] for name in TWO_QUBIT_GATES)
OP_ROTATION = frozenset(OP[name] for name in ROTATION_GATES)
#: opcode -> opcode of the inverse gate (rotations negate their angle and
#: keep their opcode; ``s``/``sdg`` swap; the rest are self-inverse).
OP_INVERSE: Tuple[int, ...] = tuple(
    OP[_INVERSE_NAME.get(name, name)] for name in OPCODES
)


class Gate:
    """An immutable gate application.

    Parameters
    ----------
    name:
        Lower-case gate mnemonic.
    qubits:
        Target qubits.  For ``cx`` the order is ``(control, target)``.
    params:
        Rotation angles for ``rx``/``ry``/``rz``; empty otherwise.
    """

    __slots__ = ("name", "qubits", "params")

    def __init__(self, name: str, qubits: Tuple[int, ...], params: Tuple[float, ...] = ()):
        if name not in SINGLE_QUBIT_GATES and name not in TWO_QUBIT_GATES:
            raise ValueError(f"unknown gate {name!r}")
        expected = 1 if name in SINGLE_QUBIT_GATES else 2
        if len(qubits) != expected:
            raise ValueError(f"gate {name!r} expects {expected} qubit(s), got {qubits}")
        if name in ROTATION_GATES and len(params) != 1:
            raise ValueError(f"gate {name!r} expects one angle parameter")
        if name not in ROTATION_GATES and params:
            raise ValueError(f"gate {name!r} takes no parameters")
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"gate {name!r} applied to duplicate qubits {qubits}")
        self.name = name
        self.qubits = tuple(int(q) for q in qubits)
        self.params = tuple(float(p) for p in params)

    @classmethod
    def _from_row(cls, name: str, qubits: Tuple[int, ...], params: Tuple[float, ...]) -> "Gate":
        """Build a gate from an already-validated tape row, skipping checks."""
        gate = cls.__new__(cls)
        gate.name = name
        gate.qubits = qubits
        gate.params = params
        return gate

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def is_two_qubit(self) -> bool:
        return self.name in TWO_QUBIT_GATES

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gate):
            return NotImplemented
        return (
            self.name == other.name
            and self.qubits == other.qubits
            and self.params == other.params
        )

    def __hash__(self) -> int:
        return hash((self.name, self.qubits, self.params))

    def __repr__(self) -> str:
        if self.params:
            args = ", ".join(f"{p:.6g}" for p in self.params)
            return f"{self.name}({args}) q{list(self.qubits)}"
        return f"{self.name} q{list(self.qubits)}"


_CX_MATRIX = np.array(
    # control = qubits[0] (bit 0 in the local basis), target = qubits[1]
    [
        [1, 0, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
    ],
    dtype=complex,
)
_CZ_MATRIX = np.diag([1, 1, 1, -1]).astype(complex)
_SWAP_MATRIX = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)

#: opcode -> fixed matrix (None for the three parametric rotations).
_FIXED_2Q = {"cx": _CX_MATRIX, "cz": _CZ_MATRIX, "swap": _SWAP_MATRIX}
_FIXED_BY_OP: Tuple[Optional[np.ndarray], ...] = tuple(
    _FIXED_1Q[name] if name in _FIXED_1Q else _FIXED_2Q.get(name)
    for name in OPCODES
)
_OP_RX, _OP_RY, _OP_RZ = OP["rx"], OP["ry"], OP["rz"]


def matrix_for_op(op: int, param: float = 0.0) -> np.ndarray:
    """Unitary for a tape row: opcode plus rotation angle (if any).

    Two-qubit matrices are in the basis ``|q1 q0>`` with ``q0`` the row's
    first qubit (little-endian within the gate).
    """
    fixed = _FIXED_BY_OP[op]
    if fixed is not None:
        return fixed
    c, s = math.cos(param / 2.0), math.sin(param / 2.0)
    if op == _OP_RZ:
        return np.array([[c - 1j * s, 0], [0, c + 1j * s]], dtype=complex)
    if op == _OP_RX:
        return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)
    return np.array([[c, -s], [s, c]], dtype=complex)  # ry


def gate_matrix(gate: Gate) -> np.ndarray:
    """Return the unitary of a gate on its own qubits.

    For two-qubit gates the matrix is given in the basis ``|q1 q0>`` where
    ``q0`` is ``gate.qubits[0]`` (little-endian within the gate).
    """
    op = OP.get(gate.name)
    if op is None:
        raise ValueError(f"no matrix for gate {gate.name!r}")
    return matrix_for_op(op, gate.params[0] if gate.params else 0.0)


def inverse_gate(gate: Gate) -> Gate:
    """Return the inverse of a gate as another :class:`Gate`."""
    if gate.name in SELF_INVERSE_GATES:
        return gate
    if gate.name in ROTATION_GATES:
        return Gate(gate.name, gate.qubits, (-gate.params[0],))
    other = _INVERSE_NAME.get(gate.name)
    if other is None:
        raise ValueError(f"cannot invert gate {gate.name!r}")
    return Gate(other, gate.qubits)
