"""DAG representation of circuits with commutation analysis.

A :class:`DAGCircuit` captures the true dependency structure of a gate
list: node ``v`` depends on node ``u`` when they share a qubit and ``u``
comes first.  On top of the plain wire-order DAG, :meth:`commutation_dag`
*relaxes* edges between gates that commute (e.g. two CNOTs sharing only
controls, or diagonal gates on a CNOT control), exposing more reordering
freedom than the textual gate order suggests.

Uses:

* :func:`dag_depth` — longest path = circuit depth, per gate-weight;
* :meth:`DAGCircuit.layers` — ASAP layering (parallel gate groups);
* :func:`critical_path` — the gates that bound execution time;
* round-trip back to :class:`~repro.circuit.QuantumCircuit` in any
  topological order (used to canonicalize or to verify schedulers).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .circuit import QuantumCircuit
from .gates import Gate

__all__ = ["DAGCircuit", "dag_depth", "critical_path", "gates_commute"]

_DIAGONAL = frozenset({"z", "s", "sdg", "rz", "cz"})
_X_AXIS = frozenset({"x", "rx"})


def gates_commute(a: Gate, b: Gate) -> bool:
    """Conservative syntactic commutation check for disjoint or known pairs.

    Returns ``True`` only when commutation is certain:

    * disjoint qubit sets always commute;
    * two diagonal gates always commute;
    * two ``cx`` sharing only their controls (or only their targets)
      commute;
    * a diagonal 1q gate commutes with a ``cx`` through its control; an
      X-axis 1q gate commutes through the target.
    """
    shared = set(a.qubits) & set(b.qubits)
    if not shared:
        return True
    if a.name in _DIAGONAL and b.name in _DIAGONAL:
        return True
    for first, second in ((a, b), (b, a)):
        if first.name == "cx" and second.num_qubits == 1:
            qubit = second.qubits[0]
            if qubit == first.qubits[0] and second.name in _DIAGONAL:
                return True
            if qubit == first.qubits[1] and second.name in _X_AXIS:
                return True
    if a.name == "cx" and b.name == "cx":
        if a.qubits[0] == b.qubits[0] and a.qubits[1] != b.qubits[1]:
            return True
        if a.qubits[1] == b.qubits[1] and a.qubits[0] != b.qubits[0]:
            return True
    return False


class DAGCircuit:
    """Dependency DAG over a circuit's gates.

    Nodes are gate indices into ``self.gates``; ``edges[u]`` lists direct
    successors.
    """

    def __init__(self, gates: Sequence[Gate], num_qubits: int,
                 edges: Dict[int, List[int]]):
        self.gates = list(gates)
        self.num_qubits = num_qubits
        self.edges = edges
        self._predecessors: Optional[Dict[int, List[int]]] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "DAGCircuit":
        """Wire-order DAG, read off the tape's per-wire predecessor links."""
        tape = circuit.tape
        tape.ensure_links()
        index_of = {slot: idx for idx, slot in enumerate(tape.iter_slots())}
        edges: Dict[int, List[int]] = {i: [] for i in range(len(index_of))}
        for slot, idx in index_of.items():
            parents = set()
            prev0 = tape.prv0[slot]
            if prev0 != -1:
                parents.add(index_of[prev0])
            if tape.q1[slot] != -1:
                prev1 = tape.prv1[slot]
                if prev1 != -1:
                    parents.add(index_of[prev1])
            for parent in sorted(parents):
                edges[parent].append(idx)
        return cls(circuit.gates, circuit.num_qubits, edges)

    @classmethod
    def commutation_dag(cls, circuit: QuantumCircuit) -> "DAGCircuit":
        """DAG with commuting-pair edges relaxed.

        For each gate, every earlier non-commuting gate on a shared wire
        becomes a dependency (commuting pairs get no edge).  Pairwise
        commutation does not compose transitively, so the walk must not
        stop at the first blocker — an older non-commuting gate still needs
        its edge even when a nearer blocker exists.  Redundant transitive
        edges are harmless for depth/layer queries.
        """
        gates = list(circuit.gates)
        edges: Dict[int, List[int]] = {i: [] for i in range(len(gates))}
        history: Dict[int, List[int]] = {q: [] for q in range(circuit.num_qubits)}
        for idx, gate in enumerate(gates):
            parents: Set[int] = set()
            for q in gate.qubits:
                for earlier in history[q]:
                    if not gates_commute(gate, gates[earlier]):
                        parents.add(earlier)
            for parent in sorted(parents):
                edges[parent].append(idx)
            for q in gate.qubits:
                history[q].append(idx)
        return cls(gates, circuit.num_qubits, edges)

    # ------------------------------------------------------------------
    def predecessors(self) -> Dict[int, List[int]]:
        if self._predecessors is None:
            preds: Dict[int, List[int]] = {i: [] for i in range(len(self.gates))}
            for u, vs in self.edges.items():
                for v in vs:
                    preds[v].append(u)
            self._predecessors = preds
        return self._predecessors

    def topological_order(self) -> List[int]:
        preds = self.predecessors()
        in_degree = {i: len(p) for i, p in preds.items()}
        ready = sorted(i for i, d in in_degree.items() if d == 0)
        order: List[int] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in self.edges[node]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
            ready.sort()
        if len(order) != len(self.gates):
            raise RuntimeError("cycle in circuit DAG")
        return order

    def layers(self) -> List[List[int]]:
        """ASAP layering: each layer's gates have all parents in earlier
        layers."""
        preds = self.predecessors()
        level: Dict[int, int] = {}
        for node in self.topological_order():
            level[node] = 1 + max((level[p] for p in preds[node]), default=-1)
        depth = max(level.values(), default=-1) + 1
        out: List[List[int]] = [[] for _ in range(depth)]
        for node, lvl in level.items():
            out[lvl].append(node)
        return out

    def to_circuit(self, order: Optional[Sequence[int]] = None) -> QuantumCircuit:
        """Rebuild a circuit in topological (or a caller-given) order."""
        order = list(order) if order is not None else self.topological_order()
        circuit = QuantumCircuit(self.num_qubits)
        for idx in order:
            circuit.append(self.gates[idx])
        return circuit


def dag_depth(
    dag: DAGCircuit,
    weight: Callable[[Gate], float] = lambda gate: 1.0,
) -> float:
    """Longest weighted path through the DAG (critical-path length)."""
    preds = dag.predecessors()
    finish: Dict[int, float] = {}
    for node in dag.topological_order():
        start = max((finish[p] for p in preds[node]), default=0.0)
        finish[node] = start + weight(dag.gates[node])
    return max(finish.values(), default=0.0)


def critical_path(
    dag: DAGCircuit,
    weight: Callable[[Gate], float] = lambda gate: 1.0,
) -> List[int]:
    """One longest weighted path, as gate indices in execution order."""
    preds = dag.predecessors()
    finish: Dict[int, float] = {}
    choice: Dict[int, Optional[int]] = {}
    for node in dag.topological_order():
        best_parent = None
        start = 0.0
        for p in preds[node]:
            if finish[p] > start:
                start = finish[p]
                best_parent = p
        finish[node] = start + weight(dag.gates[node])
        choice[node] = best_parent
    if not finish:
        return []
    node = max(finish, key=lambda n: finish[n])
    path = [node]
    while choice[node] is not None:
        node = choice[node]
        path.append(node)
    return list(reversed(path))
