"""Gate-level circuit substrate: gates, circuits, exact simulation."""

from .circuit import QuantumCircuit
from .dag import DAGCircuit, critical_path, dag_depth, gates_commute
from .gates import Gate, gate_matrix, inverse_gate
from .qasm import from_qasm, to_qasm
from .tape import GateTape
from .statevector import (
    apply_gate,
    circuit_unitary,
    equivalent_up_to_global_phase,
    simulate,
)

__all__ = [
    "DAGCircuit",
    "Gate",
    "GateTape",
    "QuantumCircuit",
    "critical_path",
    "dag_depth",
    "from_qasm",
    "gates_commute",
    "to_qasm",
    "apply_gate",
    "circuit_unitary",
    "equivalent_up_to_global_phase",
    "gate_matrix",
    "inverse_gate",
    "simulate",
]
