"""Columnar gate tape: the storage substrate under :class:`QuantumCircuit`.

A :class:`GateTape` stores a gate list as structure-of-arrays columns —
opcode, the (up to two) qubit operands, the rotation angle, and an alive
mask — plus a persistent per-wire doubly-linked list threaded through the
rows.  Every structural query the compiler passes need (the next/previous
gate on a wire, per-opcode counts, wire order) is O(1) per step instead of
a rebuild-the-world scan, which is what makes the worklist peephole engine
and the SABRE router linear-time.

Rows are append-only; removal marks a row dead and splices its wire links.
``compact()`` rebuilds a dense tape when the dead fraction matters (the
peephole engine does this once, at the end of a fixpoint run).

Slots (row indices) are stable across removals, so engines can hold slot
handles in worklists without invalidation.  All columns are plain Python
lists: the engines do scalar pointer-chasing, where list indexing beats
numpy element access by a wide margin.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator, List, Tuple

from .gates import OP_ROTATION as _OP_ROTATION
from .gates import OPCODES, Gate

__all__ = ["GateTape"]

NO_SLOT = -1


class GateTape:
    """Structure-of-arrays gate storage with per-wire doubly-linked order.

    Columns (parallel lists indexed by *slot*):

    * ``op`` — small-int opcode (index into :data:`~repro.circuit.gates.OPCODES`);
    * ``q0``, ``q1`` — qubit operands (``q1 == -1`` for one-qubit gates);
    * ``param`` — rotation angle (0.0 for non-rotations);
    * ``alive`` — liveness flag;
    * ``nxt0``/``prv0`` — successor/predecessor slot on the ``q0`` wire;
    * ``nxt1``/``prv1`` — successor/predecessor slot on the ``q1`` wire.

    ``head[q]``/``tail[q]`` give each wire's first/last live slot.
    """

    __slots__ = (
        "num_qubits", "op", "q0", "q1", "param", "alive",
        "nxt0", "prv0", "nxt1", "prv1", "head", "tail",
        "alive_count", "counts", "_links_ready",
    )

    def __init__(self, num_qubits: int):
        self.num_qubits = num_qubits
        self.op: List[int] = []
        self.q0: List[int] = []
        self.q1: List[int] = []
        self.param: List[float] = []
        self.alive: List[bool] = []
        self.nxt0: List[int] = []
        self.prv0: List[int] = []
        self.nxt1: List[int] = []
        self.prv1: List[int] = []
        self.head: List[int] = []
        self.tail: List[int] = []
        self.alive_count = 0
        self.counts: List[int] = [0] * len(OPCODES)
        self._links_ready = False

    @classmethod
    def from_columns(
        cls,
        num_qubits: int,
        op: List[int],
        q0: List[int],
        q1: List[int],
        param: List[float],
    ) -> "GateTape":
        """Adopt pre-built columns (all rows live); links realize lazily."""
        tape = cls.__new__(cls)
        tape.num_qubits = num_qubits
        tape.op = op
        tape.q0 = q0
        tape.q1 = q1
        tape.param = param
        n = len(op)
        tape.alive = [True] * n
        tape.alive_count = n
        by_code = Counter(op)
        tape.counts = [by_code.get(code, 0) for code in range(len(OPCODES))]
        tape.nxt0 = []
        tape.prv0 = []
        tape.nxt1 = []
        tape.prv1 = []
        tape.head = []
        tape.tail = []
        tape._links_ready = False
        return tape

    # ------------------------------------------------------------------
    # Wire links (lazily realized, persistently maintained thereafter)
    # ------------------------------------------------------------------
    def ensure_links(self) -> None:
        """Realize the per-wire doubly-linked lists if not built yet.

        Appends before the first structural query skip link bookkeeping
        entirely (circuit *construction* is append-only and order-driven);
        the first consumer pays one O(rows) pass, and every append or
        removal afterwards maintains the links incrementally.
        """
        if self._links_ready:
            return
        n = len(self.op)
        nxt0 = [NO_SLOT] * n
        prv0 = [NO_SLOT] * n
        nxt1 = [NO_SLOT] * n
        prv1 = [NO_SLOT] * n
        head = [NO_SLOT] * self.num_qubits
        tail = [NO_SLOT] * self.num_qubits
        alive, q0s, q1s = self.alive, self.q0, self.q1
        for slot in range(n):
            if not alive[slot]:
                continue
            wire = q0s[slot]
            prev = tail[wire]
            prv0[slot] = prev
            if prev == NO_SLOT:
                head[wire] = slot
            elif q0s[prev] == wire:
                nxt0[prev] = slot
            else:
                nxt1[prev] = slot
            tail[wire] = slot
            wire = q1s[slot]
            if wire != NO_SLOT:
                prev = tail[wire]
                prv1[slot] = prev
                if prev == NO_SLOT:
                    head[wire] = slot
                elif q0s[prev] == wire:
                    nxt0[prev] = slot
                else:
                    nxt1[prev] = slot
                tail[wire] = slot
        self.nxt0, self.prv0 = nxt0, prv0
        self.nxt1, self.prv1 = nxt1, prv1
        self.head, self.tail = head, tail
        self._links_ready = True

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, op: int, q0: int, q1: int = NO_SLOT, param: float = 0.0) -> int:
        """Append a validated row; returns its slot."""
        slot = len(self.op)
        self.op.append(op)
        self.q0.append(q0)
        self.q1.append(q1)
        self.param.append(param)
        self.alive.append(True)
        self.alive_count += 1
        self.counts[op] += 1
        if not self._links_ready:
            return slot
        tail = self.tail
        prev0 = tail[q0]
        self.prv0.append(prev0)
        self.nxt0.append(NO_SLOT)
        if prev0 == NO_SLOT:
            self.head[q0] = slot
        else:
            self._set_next(prev0, q0, slot)
        tail[q0] = slot
        if q1 != NO_SLOT:
            prev1 = tail[q1]
            self.prv1.append(prev1)
            self.nxt1.append(NO_SLOT)
            if prev1 == NO_SLOT:
                self.head[q1] = slot
            else:
                self._set_next(prev1, q1, slot)
            tail[q1] = slot
        else:
            self.prv1.append(NO_SLOT)
            self.nxt1.append(NO_SLOT)
        return slot

    def remove(self, slot: int) -> None:
        """Kill a live row and splice it out of its wire lists."""
        self.ensure_links()
        self.alive[slot] = False
        self.alive_count -= 1
        self.counts[self.op[slot]] -= 1
        self._unlink(slot, self.q0[slot], self.prv0[slot], self.nxt0[slot])
        q1 = self.q1[slot]
        if q1 != NO_SLOT:
            self._unlink(slot, q1, self.prv1[slot], self.nxt1[slot])

    def truncate_to(self, length: int) -> None:
        """Drop every row at dense (live-order) position ``length`` onward.

        On an append-only tape (no dead rows) the doomed region is a
        physical column suffix, so it is popped outright — O(dropped) —
        and the links are simply invalidated for lazy rebuild.  A tape
        that already carries dead rows falls back to mark-and-splice.
        """
        if length >= self.alive_count:
            return
        n = len(self.op)
        if self.alive_count == n:
            counts = self.counts
            for code in self.op[length:]:
                counts[code] -= 1
            del self.op[length:]
            del self.q0[length:]
            del self.q1[length:]
            del self.param[length:]
            del self.alive[length:]
            self.alive_count = length
            if self._links_ready:
                self._links_ready = False
                self.nxt0 = []
                self.prv0 = []
                self.nxt1 = []
                self.prv1 = []
                self.head = []
                self.tail = []
            return
        doomed = [slot for pos, slot in enumerate(self.iter_slots()) if pos >= length]
        for slot in doomed:
            self.remove(slot)

    def set_rotation(self, slot: int, op: int, param: float) -> None:
        """Rewrite a live row in place (same qubits, new opcode/angle)."""
        old = self.op[slot]
        if old != op:
            self.counts[old] -= 1
            self.counts[op] += 1
            self.op[slot] = op
        self.param[slot] = param

    def set_two_qubit_op(self, slot: int, op: int, q0: int, q1: int) -> None:
        """Rewrite a live two-qubit row's opcode/operand order in place.

        ``{q0, q1}`` must equal the row's current qubit set; only the
        control/target roles may differ, so wire membership (and hence the
        link structure) is preserved up to a role swap.
        """
        old = self.op[slot]
        if old != op:
            self.counts[old] -= 1
            self.counts[op] += 1
            self.op[slot] = op
        if self.q0[slot] != q0:
            self.q0[slot], self.q1[slot] = q0, q1
            if self._links_ready:
                self.nxt0[slot], self.nxt1[slot] = self.nxt1[slot], self.nxt0[slot]
                self.prv0[slot], self.prv1[slot] = self.prv1[slot], self.prv0[slot]

    def _unlink(self, slot: int, wire: int, prev: int, nxt: int) -> None:
        if prev == NO_SLOT:
            self.head[wire] = nxt
        else:
            self._set_next(prev, wire, nxt)
        if nxt == NO_SLOT:
            self.tail[wire] = prev
        else:
            self._set_prev(nxt, wire, prev)

    def _set_next(self, slot: int, wire: int, value: int) -> None:
        if self.q0[slot] == wire:
            self.nxt0[slot] = value
        else:
            self.nxt1[slot] = value

    def _set_prev(self, slot: int, wire: int, value: int) -> None:
        if self.q0[slot] == wire:
            self.prv0[slot] = value
        else:
            self.prv1[slot] = value

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def wire_next(self, slot: int, wire: int) -> int:
        self.ensure_links()
        return self.nxt0[slot] if self.q0[slot] == wire else self.nxt1[slot]

    def wire_prev(self, slot: int, wire: int) -> int:
        self.ensure_links()
        return self.prv0[slot] if self.q0[slot] == wire else self.prv1[slot]

    def wire_sequence(self, wire: int) -> List[int]:
        """Live slots on a wire, in program order."""
        self.ensure_links()
        out: List[int] = []
        slot = self.head[wire]
        while slot != NO_SLOT:
            out.append(slot)
            slot = self.wire_next(slot, wire)
        return out

    def iter_slots(self) -> Iterator[int]:
        """Live slots in program order."""
        alive = self.alive
        for slot in range(len(alive)):
            if alive[slot]:
                yield slot

    def gate_at(self, slot: int) -> Gate:
        """Materialize a :class:`Gate` record for a live row."""
        op = self.op[slot]
        q1 = self.q1[slot]
        qubits = (self.q0[slot],) if q1 == NO_SLOT else (self.q0[slot], q1)
        params = (self.param[slot],) if op in _OP_ROTATION else ()
        return Gate._from_row(OPCODES[op], qubits, params)

    def row(self, slot: int) -> Tuple[int, int, int, float]:
        return self.op[slot], self.q0[slot], self.q1[slot], self.param[slot]

    # ------------------------------------------------------------------
    # Whole-tape operations
    # ------------------------------------------------------------------
    def copy(self) -> "GateTape":
        out = GateTape.__new__(GateTape)
        out.num_qubits = self.num_qubits
        out.op = list(self.op)
        out.q0 = list(self.q0)
        out.q1 = list(self.q1)
        out.param = list(self.param)
        out.alive = list(self.alive)
        out.nxt0 = list(self.nxt0)
        out.prv0 = list(self.prv0)
        out.nxt1 = list(self.nxt1)
        out.prv1 = list(self.prv1)
        out.head = list(self.head)
        out.tail = list(self.tail)
        out.alive_count = self.alive_count
        out.counts = list(self.counts)
        out._links_ready = self._links_ready
        return out

    def compact(self) -> "GateTape":
        """Dense copy with dead rows dropped (slot numbering changes)."""
        live = list(self.iter_slots())
        op, q0, q1, param = self.op, self.q0, self.q1, self.param
        return GateTape.from_columns(
            self.num_qubits,
            [op[s] for s in live],
            [q0[s] for s in live],
            [q1[s] for s in live],
            [param[s] for s in live],
        )

    def check_invariants(self) -> None:
        """Debug helper: verify link/count consistency (used in tests)."""
        seen = 0
        counts = [0] * len(OPCODES)
        for slot in self.iter_slots():
            seen += 1
            counts[self.op[slot]] += 1
        assert seen == self.alive_count, "alive_count out of sync"
        assert counts == self.counts, "per-opcode counts out of sync"
        order = {slot: pos for pos, slot in enumerate(self.iter_slots())}
        for wire in range(self.num_qubits):
            seq = self.wire_sequence(wire)
            assert all(self.alive[s] for s in seq), "dead slot linked"
            assert [order[s] for s in seq] == sorted(order[s] for s in seq), (
                "wire order diverged from program order"
            )
            prev = NO_SLOT
            for s in seq:
                assert self.wire_prev(s, wire) == prev, "broken prev link"
                prev = s
            assert self.tail[wire] == (seq[-1] if seq else NO_SLOT)
