"""Statevector simulation of circuits.

Little-endian convention throughout: basis state index ``b`` assigns qubit
``i`` the bit ``(b >> i) & 1``.  This matches the Pauli-string convention
where the label's rightmost character acts on ``q0``.

The simulator is exact and dense; it is meant for verification (<= ~16
qubits) and for the noisy QAOA study, not for large-scale simulation.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from .circuit import QuantumCircuit
from .gates import Gate, gate_matrix, matrix_for_op
from .tape import NO_SLOT

__all__ = ["apply_gate", "simulate", "circuit_unitary", "equivalent_up_to_global_phase"]


def _apply_single(state: np.ndarray, matrix: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
    """Apply a 2x2 matrix to ``qubit`` of a dense state."""
    # Reshape so the target qubit becomes its own axis.  With little-endian
    # indexing, axis k of shape (2,)*n (C order) corresponds to qubit n-1-k.
    tensor = state.reshape((2,) * num_qubits)
    axis = num_qubits - 1 - qubit
    tensor = np.moveaxis(tensor, axis, 0)
    tensor = np.tensordot(matrix, tensor, axes=([1], [0]))
    tensor = np.moveaxis(tensor, 0, axis)
    return tensor.reshape(-1)


def _apply_two(state: np.ndarray, matrix: np.ndarray, q0: int, q1: int, num_qubits: int) -> np.ndarray:
    """Apply a 4x4 matrix (basis ``|q1 q0>``) to qubits ``q0``, ``q1``."""
    tensor = state.reshape((2,) * num_qubits)
    axis0 = num_qubits - 1 - q0
    axis1 = num_qubits - 1 - q1
    # Move q1 to axis 0 and q0 to axis 1 so the combined index is q1*2 + q0.
    tensor = np.moveaxis(tensor, (axis1, axis0), (0, 1))
    shape = tensor.shape
    tensor = tensor.reshape(4, -1)
    tensor = matrix @ tensor
    tensor = tensor.reshape(shape)
    tensor = np.moveaxis(tensor, (0, 1), (axis1, axis0))
    return tensor.reshape(-1)


def apply_gate(state: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Apply one gate to a dense statevector, returning a new array."""
    matrix = gate_matrix(gate)
    if gate.num_qubits == 1:
        return _apply_single(state, matrix, gate.qubits[0], num_qubits)
    q0, q1 = gate.qubits
    return _apply_two(state, matrix, q0, q1, num_qubits)


def simulate(
    circuit: QuantumCircuit,
    initial_state: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Run a circuit on ``initial_state`` (default ``|0...0>``)."""
    dim = 2 ** circuit.num_qubits
    if initial_state is None:
        state = np.zeros(dim, dtype=complex)
        state[0] = 1.0
    else:
        state = np.asarray(initial_state, dtype=complex)
        if state.shape != (dim,):
            raise ValueError(f"initial state must have shape ({dim},)")
        state = state.copy()
    # Walk the tape columns directly: simulation needs only (op, qubits,
    # angle) per row, so no Gate records are materialized.
    tape = circuit.tape
    num_qubits = circuit.num_qubits
    for slot in tape.iter_slots():
        op, q0, q1, param = tape.row(slot)
        matrix = matrix_for_op(op, param)
        if q1 == NO_SLOT:
            state = _apply_single(state, matrix, q0, num_qubits)
        else:
            state = _apply_two(state, matrix, q0, q1, num_qubits)
    return state


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Dense unitary of a circuit.  Only sensible for small circuits."""
    if circuit.num_qubits > 12:
        raise ValueError("refusing to build a dense unitary for > 12 qubits")
    dim = 2 ** circuit.num_qubits
    out = np.eye(dim, dtype=complex)
    for col in range(dim):
        out[:, col] = simulate(circuit, out[:, col].copy())
    return out


def equivalent_up_to_global_phase(a: np.ndarray, b: np.ndarray, atol: float = 1e-8) -> bool:
    """True when two matrices (or vectors) are equal up to a global phase.

    A (near-)zero input has no well-defined phase, so it is never
    equivalent to anything — not even another zero array.  Meaningful
    inputs (statevectors, unitaries) have norm >= 1; an all-zero array
    here means an upstream bug, and an equivalence oracle must fail loudly
    rather than vacuously certify it.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    flat_a = a.reshape(-1)
    flat_b = b.reshape(-1)
    if np.linalg.norm(flat_a) <= atol or np.linalg.norm(flat_b) <= atol:
        return False
    # norm > atol guarantees the largest |a| element is non-zero, so the
    # phase estimate below is always well-defined; a genuinely different b
    # fails either the |phase| == 1 check or the final allclose.
    idx = int(np.argmax(np.abs(flat_a)))
    phase = flat_b[idx] / flat_a[idx]
    if not np.isclose(abs(phase), 1.0, atol=atol):
        return False
    return bool(np.allclose(flat_a * phase, flat_b, atol=atol))
