"""OpenQASM 2.0 export/import for circuits.

Lets compiled circuits leave this toolchain (e.g. for execution on real
devices through vendor SDKs).  The ``yh`` basis gate has no QASM primitive;
since ``yh = (Y+Z)/sqrt(2)`` is ``Z`` conjugated by a 45-degree X rotation,
it is emitted as the exact sequence ``rx(pi/4); z; rx(-pi/4)``
(``Rx(-pi/4) Z Rx(pi/4)`` as an operator product; verified in tests).
"""

from __future__ import annotations

import math
import re
from typing import List

from .circuit import QuantumCircuit
from .gates import Gate

__all__ = ["to_qasm", "from_qasm"]

_SIMPLE = {"h", "x", "y", "z", "s", "sdg", "cx", "cz", "swap", "id"}
_ROTATIONS = {"rx", "ry", "rz"}


def to_qasm(circuit: QuantumCircuit) -> str:
    """Render a circuit as OpenQASM 2.0 text."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    for gate in circuit:
        lines.append(_gate_line(gate))
    return "\n".join(lines) + "\n"


def _gate_line(gate: Gate) -> str:
    qubits = ",".join(f"q[{q}]" for q in gate.qubits)
    if gate.name == "yh":
        q = f"q[{gate.qubits[0]}]"
        # yh = Rx(-pi/4) Z Rx(pi/4): circuit order rx(pi/4), z, rx(-pi/4).
        return f"rx(pi/4) {q};\nz {q};\nrx(-pi/4) {q};"
    if gate.name in _ROTATIONS:
        return f"{gate.name}({gate.params[0]:.12g}) {qubits};"
    if gate.name in _SIMPLE:
        return f"{gate.name} {qubits};"
    raise ValueError(f"cannot export gate {gate.name!r}")


_QREG_RE = re.compile(r"qreg\s+(\w+)\[(\d+)\]")
_GATE_RE = re.compile(
    r"^\s*(\w+)\s*(?:\(([^)]*)\))?\s+(.*?);\s*$"
)
_QUBIT_RE = re.compile(r"\w+\[(\d+)\]")


def from_qasm(text: str) -> QuantumCircuit:
    """Parse a (subset of) OpenQASM 2.0 back into a circuit.

    Supports the gates this library emits; measurement/barrier lines are
    ignored.
    """
    match = _QREG_RE.search(text)
    if match is None:
        raise ValueError("no qreg declaration found")
    circuit = QuantumCircuit(int(match.group(2)))
    for line in text.splitlines():
        line = line.strip()
        if (
            not line
            or line.startswith(("OPENQASM", "include", "qreg", "creg", "//",
                                "measure", "barrier"))
        ):
            continue
        parsed = _GATE_RE.match(line)
        if parsed is None:
            raise ValueError(f"cannot parse QASM line: {line!r}")
        name, params, operands = parsed.groups()
        qubits = tuple(int(m) for m in _QUBIT_RE.findall(operands))
        if name in _ROTATIONS:
            circuit.append(Gate(name, qubits, (_eval_angle(params),)))
        elif name in _SIMPLE:
            circuit.append(Gate(name, qubits))
        else:
            raise ValueError(f"unsupported QASM gate {name!r}")
    return circuit


def _eval_angle(expression: str) -> float:
    """Evaluate a QASM angle: float literals and simple ``pi`` arithmetic."""
    cleaned = expression.replace("pi", repr(math.pi))
    if not re.fullmatch(r"[0-9eE+\-*/. ()]+", cleaned):
        raise ValueError(f"unsafe angle expression {expression!r}")
    return float(eval(cleaned, {"__builtins__": {}}, {}))  # noqa: S307 - sanitized
