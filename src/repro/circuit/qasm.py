"""OpenQASM 2.0 export/import for circuits.

Lets compiled circuits leave this toolchain (e.g. for execution on real
devices through vendor SDKs).  The ``yh`` basis gate has no QASM primitive;
since ``yh = (Y+Z)/sqrt(2)`` is ``Z`` conjugated by a 45-degree X rotation,
it is emitted as the exact sequence ``rx(pi/4); z; rx(-pi/4)``
(``Rx(-pi/4) Z Rx(pi/4)`` as an operator product; verified in tests).
"""

from __future__ import annotations

import math
import re
from typing import List, Optional

from .circuit import QuantumCircuit
from .gates import Gate

__all__ = ["to_qasm", "from_qasm"]

_SIMPLE = {"h", "x", "y", "z", "s", "sdg", "cx", "cz", "swap", "id"}
_ROTATIONS = {"rx", "ry", "rz"}


def to_qasm(circuit: QuantumCircuit) -> str:
    """Render a circuit as OpenQASM 2.0 text."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    for gate in circuit:
        lines.append(_gate_line(gate))
    return "\n".join(lines) + "\n"


def _gate_line(gate: Gate) -> str:
    qubits = ",".join(f"q[{q}]" for q in gate.qubits)
    if gate.name == "yh":
        q = f"q[{gate.qubits[0]}]"
        # yh = Rx(-pi/4) Z Rx(pi/4): circuit order rx(pi/4), z, rx(-pi/4).
        return f"rx(pi/4) {q};\nz {q};\nrx(-pi/4) {q};"
    if gate.name in _ROTATIONS:
        return f"{gate.name}({gate.params[0]:.12g}) {qubits};"
    if gate.name in _SIMPLE:
        return f"{gate.name} {qubits};"
    raise ValueError(f"cannot export gate {gate.name!r}")


_QREG_RE = re.compile(r"qreg\s+(\w+)\[(\d+)\]")
_GATE_RE = re.compile(
    r"^\s*(\w+)\s*(?:\(([^)]*)\))?\s+(.*?);\s*$"
)
_QUBIT_RE = re.compile(r"\w+\[(\d+)\]")


def from_qasm(text: str) -> QuantumCircuit:
    """Parse a (subset of) OpenQASM 2.0 back into a circuit.

    Supports the gates this library emits; measurement/barrier lines are
    ignored.
    """
    match = _QREG_RE.search(text)
    if match is None:
        raise ValueError("no qreg declaration found")
    circuit = QuantumCircuit(int(match.group(2)))
    for line in text.splitlines():
        line = line.strip()
        if (
            not line
            or line.startswith(("OPENQASM", "include", "qreg", "creg", "//",
                                "measure", "barrier"))
        ):
            continue
        parsed = _GATE_RE.match(line)
        if parsed is None:
            raise ValueError(f"cannot parse QASM line: {line!r}")
        name, params, operands = parsed.groups()
        qubits = tuple(int(m) for m in _QUBIT_RE.findall(operands))
        if name in _ROTATIONS:
            circuit.append(Gate(name, qubits, (_eval_angle(params),)))
        elif name in _SIMPLE:
            circuit.append(Gate(name, qubits))
        else:
            raise ValueError(f"unsupported QASM gate {name!r}")
    return circuit


_ANGLE_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?"
    r"|\d+(?:[eE][+-]?\d+)?)|(?P<pi>pi)|(?P<op>[-+*/()]))"
)


def _tokenize_angle(expression: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(expression):
        match = _ANGLE_TOKEN_RE.match(expression, pos)
        if match is None:
            if expression[pos:].strip():
                raise ValueError(
                    f"bad angle expression {expression!r}: unexpected "
                    f"character {expression[pos:].strip()[0]!r}"
                )
            break
        tokens.append(match.group(match.lastgroup))
        pos = match.end()
    return tokens


class _AngleParser:
    """Recursive-descent evaluator for the QASM angle grammar.

    Accepts the intended grammar of the old sanitized-``eval``
    implementation — decimal/scientific number literals, ``pi``, unary
    ``+``/``-``, binary ``+ - * /``, and parentheses — with no ``eval``
    and with errors that name the offending token.  One deliberate
    narrowing: ``**`` exponentiation, which the old character whitelist
    let through to ``eval`` by accident, is now rejected (no QASM emitter
    in or out of this library produces it).
    """

    def __init__(self, expression: str):
        self.expression = expression
        self.tokens = _tokenize_angle(expression)
        self.pos = 0

    def _peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> Optional[str]:
        token = self._peek()
        self.pos += 1
        return token

    def _fail(self, why: str) -> ValueError:
        return ValueError(f"bad angle expression {self.expression!r}: {why}")

    def parse(self) -> float:
        if not self.tokens:
            raise self._fail("empty expression")
        value = self._expr()
        if self._peek() is not None:
            raise self._fail(f"unexpected token {self._peek()!r}")
        return value

    def _expr(self) -> float:
        value = self._term()
        while self._peek() in ("+", "-"):
            if self._next() == "+":
                value += self._term()
            else:
                value -= self._term()
        return value

    def _term(self) -> float:
        value = self._factor()
        while self._peek() in ("*", "/"):
            if self._next() == "*":
                value *= self._factor()
            else:
                divisor = self._factor()
                if divisor == 0.0:
                    raise self._fail("division by zero")
                value /= divisor
        return value

    def _factor(self) -> float:
        token = self._next()
        if token == "-":
            return -self._factor()
        if token == "+":
            return self._factor()
        if token == "(":
            value = self._expr()
            if self._next() != ")":
                raise self._fail("missing closing parenthesis")
            return value
        if token == "pi":
            return math.pi
        if token is None:
            raise self._fail("expression ends mid-term")
        try:
            return float(token)
        except ValueError:
            raise self._fail(f"unexpected token {token!r}") from None


def _eval_angle(expression: str) -> float:
    """Evaluate a QASM angle: float literals and simple ``pi`` arithmetic."""
    return _AngleParser(expression).parse()
