"""A minimal but complete quantum circuit container.

:class:`QuantumCircuit` is an ordered gate list with builder methods, depth
and gate-count metrics, composition/inversion, and SWAP decomposition.  It is
the common target of the Paulihedral passes and every baseline compiler in
this repository.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .gates import Gate, ROTATION_GATES, SINGLE_QUBIT_GATES, inverse_gate

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """An ordered sequence of gates on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: str = ""):
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._gates: List[Gate] = []

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "QuantumCircuit":
        for q in gate.qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(
                    f"qubit {q} out of range for a {self.num_qubits}-qubit circuit"
                )
        self._gates.append(gate)
        return self

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("h", (qubit,)))

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("x", (qubit,)))

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("y", (qubit,)))

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("z", (qubit,)))

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("s", (qubit,)))

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("sdg", (qubit,)))

    def yh(self, qubit: int) -> "QuantumCircuit":
        """Y-basis Hadamard (self-inverse, maps Y <-> Z)."""
        return self.append(Gate("yh", (qubit,)))

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("rx", (qubit,), (theta,)))

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("ry", (qubit,), (theta,)))

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("rz", (qubit,), (theta,)))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(Gate("cx", (control, target)))

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        return self.append(Gate("cz", (a, b)))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.append(Gate("swap", (a, b)))

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        for gate in gates:
            self.append(gate)
        return self

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Append another circuit's gates (same qubit count required)."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("qubit-count mismatch in compose")
        return self.extend(other.gates)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def gates(self) -> Tuple[Gate, ...]:
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        return self._gates[index]

    def count_ops(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for gate in self._gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    @property
    def cnot_count(self) -> int:
        """CNOT count with SWAP expanded as 3 CNOTs (hardware convention)."""
        counts = self.count_ops()
        return counts.get("cx", 0) + 3 * counts.get("swap", 0) + counts.get("cz", 0)

    @property
    def single_qubit_count(self) -> int:
        return sum(1 for g in self._gates if g.name in SINGLE_QUBIT_GATES)

    @property
    def two_qubit_count(self) -> int:
        return sum(1 for g in self._gates if g.is_two_qubit)

    @property
    def size(self) -> int:
        return len(self._gates)

    def depth(self) -> int:
        """Circuit depth counting every gate as one time step."""
        level: Dict[int, int] = {}
        depth = 0
        for gate in self._gates:
            start = max((level.get(q, 0) for q in gate.qubits), default=0)
            finish = start + 1
            for q in gate.qubits:
                level[q] = finish
            depth = max(depth, finish)
        return depth

    def two_qubit_depth(self) -> int:
        """Depth counting only two-qubit gates (single-qubit gates are free)."""
        level: Dict[int, int] = {}
        depth = 0
        for gate in self._gates:
            if not gate.is_two_qubit:
                continue
            start = max(level.get(q, 0) for q in gate.qubits)
            finish = start + 1
            for q in gate.qubits:
                level[q] = finish
            depth = max(depth, finish)
        return depth

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def inverse(self) -> "QuantumCircuit":
        inv = QuantumCircuit(self.num_qubits, name=f"{self.name}_dg" if self.name else "")
        for gate in reversed(self._gates):
            inv.append(inverse_gate(gate))
        return inv

    def decompose_swaps(self) -> "QuantumCircuit":
        """Rewrite every SWAP as three CNOTs (for hardware-level metrics)."""
        out = QuantumCircuit(self.num_qubits, name=self.name)
        for gate in self._gates:
            if gate.name == "swap":
                a, b = gate.qubits
                out.cx(a, b).cx(b, a).cx(a, b)
            else:
                out.append(gate)
        return out

    def copy(self) -> "QuantumCircuit":
        out = QuantumCircuit(self.num_qubits, name=self.name)
        out._gates = list(self._gates)
        return out

    def truncate(self, length: int) -> None:
        """Drop all gates at index ``length`` and beyond (speculation rollback)."""
        if length < 0:
            raise ValueError("length must be non-negative")
        del self._gates[length:]

    def remap_qubits(self, mapping: Dict[int, int], num_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Relabel qubits via ``mapping`` (old index -> new index)."""
        out = QuantumCircuit(num_qubits or self.num_qubits, name=self.name)
        for gate in self._gates:
            qubits = tuple(mapping[q] for q in gate.qubits)
            out.append(Gate(gate.name, qubits, gate.params))
        return out

    # ------------------------------------------------------------------
    # Pretty printing
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"QuantumCircuit{tag}(qubits={self.num_qubits}, gates={len(self._gates)}, "
            f"depth={self.depth()})"
        )

    def to_text(self) -> str:
        """One gate per line, assembly style."""
        return "\n".join(repr(g) for g in self._gates)
