"""A minimal but complete quantum circuit container.

:class:`QuantumCircuit` keeps the ordered-gate-list API (builder methods,
depth and gate-count metrics, composition/inversion, SWAP decomposition)
but stores gates on a columnar :class:`~repro.circuit.tape.GateTape`:
structure-of-arrays opcode/qubit/param columns with persistent per-wire
successor/predecessor links.  Metrics read the tape's running counters in
O(1), and the transpile passes (worklist peephole engine, SABRE router)
consume the wire links directly instead of re-deriving position tables.
It is the common target of the Paulihedral passes and every baseline
compiler in this repository.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .gates import OP, OPCODES, OP_SINGLE, Gate, inverse_gate
from .tape import NO_SLOT, GateTape

__all__ = ["QuantumCircuit"]

_OP_H = OP["h"]
_OP_X = OP["x"]
_OP_Y = OP["y"]
_OP_Z = OP["z"]
_OP_S = OP["s"]
_OP_SDG = OP["sdg"]
_OP_YH = OP["yh"]
_OP_RX = OP["rx"]
_OP_RY = OP["ry"]
_OP_RZ = OP["rz"]
_OP_CX = OP["cx"]
_OP_CZ = OP["cz"]
_OP_SWAP = OP["swap"]


class QuantumCircuit:
    """An ordered sequence of gates on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: str = ""):
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._tape = GateTape(self.num_qubits)
        #: Per-slot Gate cache (lazily materialized from the tape columns).
        self._slot_gates: List[Optional[Gate]] = []
        #: Dense list of live gates in order; None when stale.
        self._dense: Optional[List[Gate]] = None

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def _check_1q(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise ValueError(
                f"qubit {qubit} out of range for a {self.num_qubits}-qubit circuit"
            )

    def _push(self, op: int, q0: int, q1: int, param: float,
              gate: Optional[Gate]) -> "QuantumCircuit":
        self._tape.append(op, q0, q1, param)
        self._slot_gates.append(gate)
        self._dense = None
        return self

    def append(self, gate: Gate) -> "QuantumCircuit":
        for q in gate.qubits:
            self._check_1q(q)
        qubits = gate.qubits
        q1 = qubits[1] if len(qubits) == 2 else NO_SLOT
        param = gate.params[0] if gate.params else 0.0
        return self._push(OP[gate.name], qubits[0], q1, param, gate)

    def h(self, qubit: int) -> "QuantumCircuit":
        self._check_1q(qubit)
        return self._push(_OP_H, qubit, NO_SLOT, 0.0, None)

    def x(self, qubit: int) -> "QuantumCircuit":
        self._check_1q(qubit)
        return self._push(_OP_X, qubit, NO_SLOT, 0.0, None)

    def y(self, qubit: int) -> "QuantumCircuit":
        self._check_1q(qubit)
        return self._push(_OP_Y, qubit, NO_SLOT, 0.0, None)

    def z(self, qubit: int) -> "QuantumCircuit":
        self._check_1q(qubit)
        return self._push(_OP_Z, qubit, NO_SLOT, 0.0, None)

    def s(self, qubit: int) -> "QuantumCircuit":
        self._check_1q(qubit)
        return self._push(_OP_S, qubit, NO_SLOT, 0.0, None)

    def sdg(self, qubit: int) -> "QuantumCircuit":
        self._check_1q(qubit)
        return self._push(_OP_SDG, qubit, NO_SLOT, 0.0, None)

    def yh(self, qubit: int) -> "QuantumCircuit":
        """Y-basis Hadamard (self-inverse, maps Y <-> Z)."""
        self._check_1q(qubit)
        return self._push(_OP_YH, qubit, NO_SLOT, 0.0, None)

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        self._check_1q(qubit)
        return self._push(_OP_RX, qubit, NO_SLOT, float(theta), None)

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        self._check_1q(qubit)
        return self._push(_OP_RY, qubit, NO_SLOT, float(theta), None)

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        self._check_1q(qubit)
        return self._push(_OP_RZ, qubit, NO_SLOT, float(theta), None)

    def _check_2q(self, a: int, b: int, name: str) -> None:
        self._check_1q(a)
        self._check_1q(b)
        if a == b:
            raise ValueError(f"gate {name!r} applied to duplicate qubits {(a, b)}")

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        self._check_2q(control, target, "cx")
        return self._push(_OP_CX, control, target, 0.0, None)

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        self._check_2q(a, b, "cz")
        return self._push(_OP_CZ, a, b, 0.0, None)

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        self._check_2q(a, b, "swap")
        return self._push(_OP_SWAP, a, b, 0.0, None)

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        for gate in gates:
            self.append(gate)
        return self

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Append another circuit's gates (same qubit count required)."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("qubit-count mismatch in compose")
        return self.extend(other.gates)

    # ------------------------------------------------------------------
    # Tape access (compiler passes read/adopt the columnar storage)
    # ------------------------------------------------------------------
    @property
    def tape(self) -> GateTape:
        """The underlying columnar tape (read-only for external callers)."""
        return self._tape

    @classmethod
    def from_tape(cls, tape: GateTape, name: str = "") -> "QuantumCircuit":
        """Adopt a tape produced by a pass (compacted, all rows live)."""
        out = cls(tape.num_qubits, name=name)
        out._tape = tape
        out._slot_gates = [None] * len(tape.op)
        return out

    def _materialize(self) -> List[Gate]:
        """Dense list of live gates, materializing Gate records lazily."""
        if self._dense is None:
            tape = self._tape
            slot_gates = self._slot_gates
            dense: List[Gate] = []
            for slot in tape.iter_slots():
                gate = slot_gates[slot]
                if gate is None:
                    gate = tape.gate_at(slot)
                    slot_gates[slot] = gate
                dense.append(gate)
            self._dense = dense
        return self._dense

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def gates(self) -> Tuple[Gate, ...]:
        return tuple(self._materialize())

    def __len__(self) -> int:
        return self._tape.alive_count

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def count_ops(self) -> Dict[str, int]:
        return {
            OPCODES[op]: count
            for op, count in enumerate(self._tape.counts)
            if count
        }

    @property
    def cnot_count(self) -> int:
        """CNOT count with SWAP expanded as 3 CNOTs (hardware convention)."""
        counts = self._tape.counts
        return counts[_OP_CX] + 3 * counts[_OP_SWAP] + counts[_OP_CZ]

    @property
    def single_qubit_count(self) -> int:
        counts = self._tape.counts
        return sum(counts[op] for op in OP_SINGLE)

    @property
    def two_qubit_count(self) -> int:
        counts = self._tape.counts
        return counts[_OP_CX] + counts[_OP_CZ] + counts[_OP_SWAP]

    @property
    def size(self) -> int:
        return self._tape.alive_count

    def depth(self, swap_depth: int = 1) -> int:
        """Circuit depth counting every gate as one time step.

        ``swap_depth=3`` charges each SWAP three steps on both wires,
        matching ``decompose_swaps().depth()`` without building the
        expanded circuit.
        """
        tape = self._tape
        level = [0] * self.num_qubits
        depth = 0
        ops, q0s, q1s = tape.op, tape.q0, tape.q1
        for slot in tape.iter_slots():
            a = q0s[slot]
            b = q1s[slot]
            cost = swap_depth if ops[slot] == _OP_SWAP else 1
            if b == NO_SLOT:
                finish = level[a] + cost
                level[a] = finish
            else:
                la, lb = level[a], level[b]
                finish = (la if la >= lb else lb) + cost
                level[a] = finish
                level[b] = finish
            if finish > depth:
                depth = finish
        return depth

    def two_qubit_depth(self) -> int:
        """Depth counting only two-qubit gates (single-qubit gates are free)."""
        tape = self._tape
        level = [0] * self.num_qubits
        depth = 0
        q0s, q1s = tape.q0, tape.q1
        for slot in tape.iter_slots():
            b = q1s[slot]
            if b == NO_SLOT:
                continue
            a = q0s[slot]
            la, lb = level[a], level[b]
            finish = (la if la >= lb else lb) + 1
            level[a] = finish
            level[b] = finish
            if finish > depth:
                depth = finish
        return depth

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def inverse(self) -> "QuantumCircuit":
        inv = QuantumCircuit(self.num_qubits, name=f"{self.name}_dg" if self.name else "")
        for gate in reversed(self._materialize()):
            inv.append(inverse_gate(gate))
        return inv

    def decompose_swaps(self) -> "QuantumCircuit":
        """Rewrite every SWAP as three CNOTs (for hardware-level metrics)."""
        out = QuantumCircuit(self.num_qubits, name=self.name)
        tape = self._tape
        for slot in tape.iter_slots():
            op, q0, q1, param = tape.row(slot)
            if op == _OP_SWAP:
                out._push(_OP_CX, q0, q1, 0.0, None)
                out._push(_OP_CX, q1, q0, 0.0, None)
                out._push(_OP_CX, q0, q1, 0.0, None)
            else:
                out._push(op, q0, q1, param, self._slot_gates[slot])
        return out

    def copy(self) -> "QuantumCircuit":
        out = QuantumCircuit.__new__(QuantumCircuit)
        out.num_qubits = self.num_qubits
        out.name = self.name
        out._tape = self._tape.copy()
        out._slot_gates = list(self._slot_gates)
        out._dense = self._dense
        return out

    def truncate(self, length: int) -> None:
        """Drop all gates at index ``length`` and beyond (speculation rollback)."""
        if length < 0:
            raise ValueError("length must be non-negative")
        tape = self._tape
        if length >= tape.alive_count:
            return
        tape.truncate_to(length)
        del self._slot_gates[len(tape.op):]
        self._dense = None

    def remap_qubits(self, mapping: Dict[int, int], num_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Relabel qubits via ``mapping`` (old index -> new index)."""
        out = QuantumCircuit(num_qubits or self.num_qubits, name=self.name)
        tape = self._tape
        for slot in tape.iter_slots():
            op, q0, q1, param = tape.row(slot)
            new_q0 = mapping[q0]
            new_q1 = mapping[q1] if q1 != NO_SLOT else NO_SLOT
            out._check_1q(new_q0)
            if new_q1 != NO_SLOT:
                out._check_2q(new_q0, new_q1, OPCODES[op])
            out._push(op, new_q0, new_q1, param, None)
        return out

    # ------------------------------------------------------------------
    # Pretty printing
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"QuantumCircuit{tag}(qubits={self.num_qubits}, gates={len(self)}, "
            f"depth={self.depth()})"
        )

    def to_text(self) -> str:
        """One gate per line, assembly style."""
        return "\n".join(repr(g) for g in self._materialize())
