"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table"]


def _cell(value) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e9:
            return str(int(value))
        return f"{value:.3g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width text table with a header rule, paper-style."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
