"""Circuit metrics and comparison helpers (the paper's reporting columns)."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from ..circuit import QuantumCircuit

__all__ = ["circuit_metrics", "percent_change", "geomean", "ratio"]


def circuit_metrics(circuit: QuantumCircuit) -> Dict[str, int]:
    """The four Table 2 columns: CNOT, single-qubit, total, depth.

    SWAPs count as 3 CNOTs (hardware convention); depth is full gate depth.
    """
    cnot = circuit.cnot_count
    single = circuit.single_qubit_count
    return {
        "cnot": cnot,
        "single": single,
        "total": cnot + single,
        # Three depth steps per SWAP == decompose_swaps().depth(), without
        # materializing the expanded circuit (the counters and the depth
        # walk both read the tape columns directly).
        "depth": circuit.depth(swap_depth=3),
    }


def percent_change(new: float, old: float) -> float:
    """Signed percent change of ``new`` relative to ``old`` (negative = reduction)."""
    if old == 0:
        return 0.0 if new == 0 else math.inf
    return 100.0 * (new - old) / old


def ratio(new: float, old: float) -> float:
    """``new / old`` guarded against zero denominators."""
    return new / old if old else math.inf


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    values = [v for v in values]
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
