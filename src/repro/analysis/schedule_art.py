"""ASCII rendering of block schedules (paper Figure 8 style).

Draws a schedule as a qubit-row / layer-column grid: each cell shows the
Pauli operator a block applies on that qubit, with ``|`` separating layers.
Blocks stacked in the same layer appear in the same column band, visually
confirming the DO scheduler's padding behaviour.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.scheduling import Schedule

__all__ = ["render_schedule"]


def render_schedule(schedule: Schedule, max_layers: int = 12) -> str:
    """Render the first ``max_layers`` layers of a schedule as text art."""
    if not schedule:
        raise ValueError("empty schedule")
    num_qubits = schedule[0][0].num_qubits
    shown = schedule[:max_layers]

    # Each layer becomes a band of columns: one column per block, in layer
    # order, where a column cell holds the block's operator on that qubit
    # (first string's operator, '*' if strings differ there, '.' if idle).
    bands: List[List[str]] = []   # bands[layer][column] -> per-qubit chars
    for layer in shown:
        columns = []
        for block in layer:
            cells = []
            for q in range(num_qubits):
                ops = {ws.string[q] for ws in block}
                ops.discard("I")
                if not ops:
                    cells.append(".")
                elif len(ops) == 1:
                    cells.append(next(iter(ops)))
                else:
                    cells.append("*")
            columns.append(cells)
        bands.append(columns)

    lines = []
    header_cells = []
    for index, columns in enumerate(bands):
        header_cells.append(f"L{index}".center(len(columns) * 2 - 1))
    lines.append("        " + " | ".join(header_cells))
    for q in range(num_qubits - 1, -1, -1):
        row = []
        for columns in bands:
            row.append(" ".join(column[q] for column in columns))
        lines.append(f"q{q:<3}    " + " | ".join(row))
    if len(schedule) > max_layers:
        lines.append(f"... ({len(schedule) - max_layers} more layers)")
    return "\n".join(lines)
