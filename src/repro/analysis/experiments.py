"""Experiment drivers: one function per paper table/figure.

Each driver returns plain row dictionaries so the pytest-benchmark harness
(`benchmarks/`) and the examples can both consume them; `format_*` helpers
render them in the paper's layout.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..baselines import naive_compile, qaoa_compile, tk_compile
from ..circuit import QuantumCircuit
from ..core import compile_program, ft_compile, sc_compile
from ..core.synthesis import naive_program_circuit
from ..ir import PauliProgram
from ..noise import NoiseModel, qaoa_study
from ..pauli.symplectic import PauliTable
from ..transpile import CouplingMap, manhattan_65, melbourne, route, transpile
from ..workloads import BENCHMARKS, build_benchmark, naive_gate_counts_from_table
from .metrics import circuit_metrics, percent_change

__all__ = [
    "table1_inventory",
    "table2_compare",
    "table3_compare",
    "table4_passes",
    "fig11_study",
    "ablation_alignment",
    "ablation_tree_embedding",
]


# ----------------------------------------------------------------------
# Table 1 — benchmark inventory
# ----------------------------------------------------------------------

def table1_inventory(names: Optional[Sequence[str]] = None, scale: str = "small") -> List[Dict]:
    """Qubits, string count, naive gate counts, and weight statistics per
    benchmark.  Gate counts and weights come from the batch symplectic
    kernels, so the driver stays cheap even at paper scale."""
    rows = []
    for name in names or list(BENCHMARKS):
        spec = BENCHMARKS[name]
        program = spec.build(scale)
        table = PauliTable.from_strings(
            ws.string for ws, _ in program.all_weighted_strings()
        )
        cnots, singles = naive_gate_counts_from_table(table)
        weights = table.weights()
        rows.append(
            {
                "name": name,
                "backend": spec.backend,
                "family": spec.family,
                "qubits": program.num_qubits,
                "paulis": program.num_strings,
                "naive_cnot": cnots,
                "naive_single": singles,
                "mean_weight": float(weights.mean()),
                "max_weight": int(weights.max()),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 2 — PH vs TK frontends x generic backends
# ----------------------------------------------------------------------

def _generic_level(generic: str) -> int:
    """Map the paper's generic-compiler names onto our pipeline levels."""
    if generic == "qiskit_l3":
        return 3
    if generic == "tket_o2":
        return 2
    raise ValueError(f"unknown generic compiler {generic!r}")


def _compile_config(
    program: PauliProgram,
    frontend: str,
    generic: str,
    backend: str,
    coupling: Optional[CouplingMap],
) -> Tuple[QuantumCircuit, float, float]:
    """Run one Table 2 configuration.

    Returns ``(circuit, frontend_seconds, generic_seconds)``.
    """
    level = _generic_level(generic)
    sc = backend == "sc"
    start = time.perf_counter()
    if frontend == "ph":
        # Table 2 uses the depth-oriented scheduler (the paper's PH depth
        # numbers — e.g. Ising-1D depth 6 — are only reachable with DO).
        if sc:
            result = sc_compile(program, coupling, scheduler="do", run_peephole=False)
            frontend_circuit = result.circuit
            needs_routing = False
        else:
            result = ft_compile(program, scheduler="do", run_peephole=False)
            frontend_circuit = result.circuit
            needs_routing = False
    elif frontend == "tk":
        frontend_circuit = tk_compile(program).circuit
        needs_routing = sc
    else:
        raise ValueError(f"unknown frontend {frontend!r}")
    frontend_seconds = time.perf_counter() - start

    start = time.perf_counter()
    if needs_routing:
        circuit = transpile(frontend_circuit, coupling=coupling, optimization_level=level)
    else:
        circuit = transpile(frontend_circuit, coupling=None, optimization_level=level)
    generic_seconds = time.perf_counter() - start
    return circuit, frontend_seconds, generic_seconds


def table2_compare(
    name: str,
    scale: str = "small",
    coupling: Optional[CouplingMap] = None,
    generics: Sequence[str] = ("qiskit_l3", "tket_o2"),
) -> Dict:
    """All four Table 2 configurations for one benchmark."""
    spec = BENCHMARKS[name]
    program = spec.build(scale)
    if spec.backend == "sc" and coupling is None:
        coupling = manhattan_65()
    row: Dict = {"name": name, "backend": spec.backend, "qubits": program.num_qubits,
                 "paulis": program.num_strings}
    for frontend in ("ph", "tk"):
        for generic in generics:
            circuit, f_sec, g_sec = _compile_config(
                program, frontend, generic, spec.backend, coupling
            )
            key = f"{frontend}+{generic}"
            row[key] = circuit_metrics(circuit)
            row[key]["frontend_s"] = f_sec
            row[key]["generic_s"] = g_sec
    return row


# ----------------------------------------------------------------------
# Table 3 — PH vs the QAOA compiler
# ----------------------------------------------------------------------

def table3_compare(
    name: str,
    scale: str = "small",
    coupling: Optional[CouplingMap] = None,
    seeds: int = 20,
) -> Dict:
    """PH+generic vs QAOA_Compiler+generic on one MaxCut benchmark."""
    spec = BENCHMARKS[name]
    if spec.family != "QAOA":
        raise ValueError(f"{name} is not a QAOA benchmark")
    program = spec.build(scale)
    coupling = coupling or manhattan_65()

    # Both compilers get random restarts (PH stays ~20x faster even so).
    start = time.perf_counter()
    ph = sc_compile(program, coupling, scheduler="do", restarts=8)
    ph_seconds = time.perf_counter() - start
    ph_metrics = circuit_metrics(ph.circuit)

    start = time.perf_counter()
    qc = qaoa_compile(program, coupling, seeds=seeds)
    qc_seconds = time.perf_counter() - start
    qc_metrics = circuit_metrics(qc.circuit)

    return {
        "name": name,
        "ph": {**ph_metrics, "seconds": ph_seconds},
        "qaoa_compiler": {**qc_metrics, "seconds": qc_seconds},
        "cnot_reduction_pct": -percent_change(ph_metrics["cnot"], qc_metrics["cnot"]),
    }


# ----------------------------------------------------------------------
# Table 4 — pass ablations: DO vs GCO, and BC improvement
# ----------------------------------------------------------------------

def table4_passes(
    name: str,
    scale: str = "small",
    coupling: Optional[CouplingMap] = None,
) -> Dict:
    """DO-vs-GCO deltas and block-wise-compilation improvement for one
    benchmark (paper Table 4's two halves)."""
    spec = BENCHMARKS[name]
    program = spec.build(scale)
    sc = spec.backend == "sc"
    if sc:
        coupling = coupling or manhattan_65()
        do_circ = sc_compile(program, coupling, scheduler="do").circuit
        gco_circ = sc_compile(program, coupling, scheduler="gco").circuit
        naive = naive_compile(program, coupling=coupling)
    else:
        do_circ = ft_compile(program, scheduler="do").circuit
        gco_circ = ft_compile(program, scheduler="gco").circuit
        naive = naive_compile(program)

    do_metrics = circuit_metrics(do_circ)
    gco_metrics = circuit_metrics(gco_circ)
    bc_metrics = do_metrics if sc else gco_metrics  # backend-preferred pass
    naive_metrics = circuit_metrics(naive)

    return {
        "name": name,
        "backend": spec.backend,
        "do": do_metrics,
        "gco": gco_metrics,
        "do_vs_gco_pct": {
            key: percent_change(do_metrics[key], gco_metrics[key])
            for key in ("cnot", "single", "total", "depth")
        },
        "naive": naive_metrics,
        "bc_improvement_pct": {
            key: percent_change(bc_metrics[key], naive_metrics[key])
            for key in ("cnot", "single", "total", "depth")
        },
    }


# ----------------------------------------------------------------------
# Figure 11 — QAOA success probability on the Melbourne device
# ----------------------------------------------------------------------

def fig11_study(
    graphs: Dict[str, "object"],
    seed: int = 11,
    resolution: int = 5,
    trajectories: int = 120,
) -> List[Dict]:
    """ESP/RSP improvement of PH over the default baseline per graph."""
    coupling = melbourne()
    model = NoiseModel.calibrated(coupling, seed=seed)
    rows = []
    for name, graph in graphs.items():
        results = qaoa_study(
            graph, coupling, model, resolution=resolution, trajectories=trajectories
        )
        rows.append(
            {
                "name": name,
                "esp_improvement": results["improvement"]["esp"],
                "rsp_improvement": results["improvement"]["rsp"],
                "baseline": results["baseline"],
                "ph": results["ph"],
            }
        )
    return rows


# ----------------------------------------------------------------------
# Extra ablations (DESIGN.md D1-D3)
# ----------------------------------------------------------------------

def ablation_alignment(name: str, scale: str = "small") -> Dict:
    """D2: adaptive junction alignment vs naive plans, same schedule."""
    from ..core.scheduling import gco_schedule, schedule_to_program

    program = BENCHMARKS[name].build(scale)
    adaptive = ft_compile(program, scheduler="gco").circuit
    scheduled_program = schedule_to_program(gco_schedule(program))
    scheduled_only = transpile(
        naive_program_circuit(scheduled_program), optimization_level=3
    )
    return {
        "name": name,
        "adaptive": circuit_metrics(adaptive),
        "scheduled_naive": circuit_metrics(scheduled_only),
    }


def ablation_tree_embedding(name: str, scale: str = "small",
                            coupling: Optional[CouplingMap] = None) -> Dict:
    """D3: Algorithm 3's tree embedding vs synthesize-then-route."""
    spec = BENCHMARKS[name]
    program = spec.build(scale)
    coupling = coupling or manhattan_65()
    embedded = sc_compile(program, coupling, scheduler="do").circuit
    ft_then_route = ft_compile(program, scheduler="gco").circuit
    routed = transpile(ft_then_route, coupling=coupling, optimization_level=3)
    return {
        "name": name,
        "tree_embedding": circuit_metrics(embedded),
        "synthesize_then_route": circuit_metrics(routed),
    }
