"""Experiment drivers, metrics, and report formatting."""

from .experiments import (
    ablation_alignment,
    ablation_tree_embedding,
    fig11_study,
    table1_inventory,
    table2_compare,
    table3_compare,
    table4_passes,
)
from .charts import bar_chart, grouped_bar_chart
from .schedule_art import render_schedule
from .metrics import circuit_metrics, geomean, percent_change, ratio
from .tables import format_table

__all__ = [
    "ablation_alignment",
    "ablation_tree_embedding",
    "bar_chart",
    "circuit_metrics",
    "grouped_bar_chart",
    "fig11_study",
    "format_table",
    "geomean",
    "percent_change",
    "ratio",
    "render_schedule",
    "table1_inventory",
    "table2_compare",
    "table3_compare",
    "table4_passes",
]
