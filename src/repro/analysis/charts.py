"""ASCII bar charts for terminal-friendly figure reproduction.

The paper's Figure 11 is a grouped bar chart (ESP / RSP improvement per
graph); :func:`bar_chart` renders the same data as text so the benchmark
harness can emit a faithful, diffable artifact without plotting
dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["bar_chart", "grouped_bar_chart"]

_FULL = "█"
_HALF = "▌"


def bar_chart(
    values: Dict[str, float],
    width: int = 40,
    unit: str = "",
    baseline: float = 0.0,
) -> str:
    """One horizontal bar per entry, scaled to ``width`` characters.

    ``baseline`` draws a reference tick (e.g. 1.0 for improvement ratios).
    """
    if not values:
        raise ValueError("no data to chart")
    label_width = max(len(k) for k in values)
    peak = max(max(values.values()), baseline, 1e-12)
    lines = []
    for key, value in values.items():
        filled = int(round(width * max(value, 0.0) / peak))
        bar = _FULL * filled
        if baseline > 0.0:
            tick = int(round(width * baseline / peak))
            padded = list(bar.ljust(width))
            if 0 <= tick < width and padded[tick] == " ":
                padded[tick] = "|"
            bar = "".join(padded).rstrip()
        lines.append(f"{key.ljust(label_width)}  {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[Tuple[str, Dict[str, float]]],
    width: int = 40,
    baseline: float = 0.0,
) -> str:
    """Figure-11 style: one block of bars per series, grouped by name."""
    blocks: List[str] = []
    for series_name, values in groups:
        blocks.append(f"{series_name}:")
        blocks.append(bar_chart(values, width=width, baseline=baseline))
    return "\n".join(blocks)
