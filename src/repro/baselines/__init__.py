"""Baseline compilers the paper compares against."""

from .naive import naive_compile
from .qaoa_compiler import QAOACompilerResult, qaoa_compile, zz_terms_of_program
from .tableau import ConjugationTracker, simultaneous_diagonalize
from .tket_like import TKResult, diagonal_rotation_gates, partition_commuting, tk_compile

__all__ = [
    "ConjugationTracker",
    "QAOACompilerResult",
    "TKResult",
    "diagonal_rotation_gates",
    "naive_compile",
    "partition_commuting",
    "qaoa_compile",
    "simultaneous_diagonalize",
    "tk_compile",
    "zz_terms_of_program",
]
