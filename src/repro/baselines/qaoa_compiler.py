"""Algorithm-specific QAOA compiler baseline (Alam et al., MICRO/DAC 2020).

The paper's Table 3 comparator: a compiler specialized to unconstrained
QAOA on graphs.  Every term is a ZZ phase gadget and all gadgets commute,
so the compiler is free to reorder them arbitrarily; the published flow
greedily interleaves *instruction parallelization* (execute every gadget
whose endpoints are currently adjacent) with *greedy SWAP insertion* (pick
the swap that most reduces the summed distance of the remaining gadgets),
restarting from several random initial layouts and keeping the best result
(the paper uses 20 random seeds).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit import QuantumCircuit
from ..ir import PauliProgram
from ..transpile import CouplingMap, Layout, optimize, validate_routed

__all__ = ["qaoa_compile", "QAOACompilerResult", "zz_terms_of_program"]


class QAOACompilerResult:
    """Output of the QAOA-compiler baseline."""

    def __init__(self, circuit: QuantumCircuit, initial_layout: Layout, final_layout: Layout, seed: int):
        self.circuit = circuit
        self.initial_layout = initial_layout
        self.final_layout = final_layout
        self.seed = seed


def zz_terms_of_program(program: PauliProgram) -> List[Tuple[int, int, float]]:
    """Extract ``(i, j, coefficient)`` ZZ terms from a QAOA program.

    Raises ``ValueError`` if any string is not a weight-2 all-Z string —
    this baseline is algorithm-specific by design.
    """
    terms: List[Tuple[int, int, float]] = []
    for ws, parameter in program.all_weighted_strings():
        support = ws.string.support
        if len(support) != 2 or any(ws.string[q] != "Z" for q in support):
            raise ValueError(
                f"QAOA compiler only handles ZZ terms, got {ws.string.label}"
            )
        terms.append((support[0], support[1], ws.weight * parameter))
    return terms


def _emit_zz(circuit: QuantumCircuit, p: int, q: int, coefficient: float) -> None:
    """``exp(i c Z_p Z_q)`` on adjacent physical qubits."""
    circuit.cx(p, q)
    circuit.rz(-2.0 * coefficient, q)
    circuit.cx(p, q)


def _compile_once(
    terms: Sequence[Tuple[int, int, float]],
    num_logical: int,
    coupling: CouplingMap,
    rng: random.Random,
) -> QAOACompilerResult:
    physical = list(range(coupling.num_qubits))
    rng.shuffle(physical)
    initial = Layout({i: physical[i] for i in range(num_logical)})
    layout = initial.copy()
    circuit = QuantumCircuit(coupling.num_qubits)
    remaining = list(terms)

    def swap_delta(p: int, q: int) -> int:
        """Change in remaining distance if physical qubits p, q swap."""
        delta = 0
        moved = {p: q, q: p}
        for i, j, _ in remaining:
            pi, pj = layout.physical(i), layout.physical(j)
            if pi not in moved and pj not in moved:
                continue
            new_pi = moved.get(pi, pi)
            new_pj = moved.get(pj, pj)
            delta += coupling.distance(new_pi, new_pj) - coupling.distance(pi, pj)
        return delta

    last_swap = None
    while remaining:
        # Instruction parallelization: run everything currently adjacent.
        progressed = True
        while progressed:
            progressed = False
            for term in list(remaining):
                i, j, coefficient = term
                p, q = layout.physical(i), layout.physical(j)
                if coupling.is_connected(p, q):
                    _emit_zz(circuit, p, q, coefficient)
                    remaining.remove(term)
                    progressed = True
        if not remaining:
            break
        # Greedy SWAP: the edge move that most reduces remaining distance,
        # scored incrementally (only terms touching the pair change).
        # Never undo the previous swap (ping-pong guard); when no swap
        # strictly improves, take a random non-reversing candidate so the
        # walk keeps exploring (the published heuristic relies on the same
        # randomized restarts to escape plateaus).
        active_physical = {
            layout.physical(x) for i, j, _ in remaining for x in (i, j)
        }
        candidates = []
        for p in sorted(active_physical):
            for nbr in coupling.neighbors(p):
                pair = tuple(sorted((p, nbr)))
                if pair == last_swap:
                    continue
                candidates.append((swap_delta(p, nbr), pair))
        assert candidates, "connected devices always admit a swap"
        best_delta = min(delta for delta, _ in candidates)
        best_pairs = [pair for delta, pair in candidates if delta == best_delta]
        best_swap = rng.choice(best_pairs)
        circuit.swap(*best_swap)
        layout.swap_physical(*best_swap)
        last_swap = best_swap

    return QAOACompilerResult(circuit, initial, layout, seed=0)


def qaoa_compile(
    program: PauliProgram,
    coupling: CouplingMap,
    seeds: int = 20,
    base_seed: int = 2022,
    run_peephole: bool = True,
) -> QAOACompilerResult:
    """Compile a QAOA program with the best of ``seeds`` random restarts.

    The selection metric is CNOT count (SWAP = 3), the dominant error source
    the published compiler optimizes for.
    """
    terms = zz_terms_of_program(program)
    best: Optional[QAOACompilerResult] = None
    for k in range(seeds):
        rng = random.Random(base_seed + k)
        result = _compile_once(terms, program.num_qubits, coupling, rng)
        result.seed = base_seed + k
        if best is None or result.circuit.cnot_count < best.circuit.cnot_count:
            best = result
    assert best is not None
    if run_peephole:
        best = QAOACompilerResult(
            optimize(best.circuit), best.initial_layout, best.final_layout, best.seed
        )
    validate_routed(best.circuit, coupling)
    return best
