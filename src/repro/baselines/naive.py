"""Naive baseline: program-order chain synthesis, no cross-string planning.

This is the paper's "naive synthesis" reference (Table 4's BC column is
measured against it) and also the frontend used for the "no frontend"
configurations: every string is synthesized with the default ascending
chain plan in program order, then handed to the generic compiler.
"""

from __future__ import annotations

from typing import Optional

from ..circuit import QuantumCircuit
from ..core.synthesis import naive_program_circuit
from ..ir import PauliProgram
from ..transpile import CouplingMap, transpile

__all__ = ["naive_compile"]


def naive_compile(
    program: PauliProgram,
    coupling: Optional[CouplingMap] = None,
    optimization_level: int = 3,
) -> QuantumCircuit:
    """Synthesize naively, then run the generic compiler (and router)."""
    circuit = naive_program_circuit(program)
    return transpile(circuit, coupling=coupling, optimization_level=optimization_level)
