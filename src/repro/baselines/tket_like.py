"""The "TK" baseline: tket-style simultaneous diagonalization.

This reimplements the published optimization pipeline behind tket's Pauli
gadget passes (Cowtan et al. 2019/2020; van den Berg & Temme 2020), the
paper's main frontend baseline:

1. **Partition** the program's weighted strings into sets of mutually
   commuting strings (greedy sequential partitioning — tket uses graph
   colouring; greedy gives the same structure class).
2. **Diagonalize** each set with a Clifford circuit ``C`` found by symplectic
   elimination (:mod:`repro.baselines.tableau`).
3. **Synthesize** the set as ``C`` + a ladder of Z-parity rotations
   (one CNOT chain + ``Rz`` per string) + ``C^dagger``.

As the paper observes (Section 6.2), the Clifford conjugation before and
after every set is exactly the overhead that Paulihedral avoids: for some
workloads (e.g. 1-D Ising, where everything already commutes) the
diagonalization *adds* gates.

Note the paper relaxes block constraints for TK ("this relaxation allows a
larger optimization space"); accordingly this pass ignores block boundaries
and works on the flattened term list.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuit import QuantumCircuit
from ..ir import PauliProgram
from ..pauli import PauliString
from ..pauli.symplectic import PauliTable
from ..verify.clifford import SignedPauli
from .tableau import simultaneous_diagonalize

__all__ = ["partition_commuting", "diagonal_rotation_gates", "tk_compile", "TKResult"]


class TKResult:
    """Output of the TK frontend."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        sets: List[List[Tuple[PauliString, float]]],
    ):
        self.circuit = circuit
        self.sets = sets


def partition_commuting(
    terms: Sequence[Tuple[PauliString, float]],
) -> List[List[Tuple[PauliString, float]]]:
    """Greedy partition into mutually-commuting sets, preserving order.

    Commutation against each candidate set is checked on the batch
    symplectic kernel: one vectorized row per term against all earlier
    terms, instead of scalar ``commutes_with`` per pair.
    """
    if not terms:
        return []
    table = PauliTable.from_strings([string for string, _ in terms])
    groups: List[List[int]] = []
    for i in range(len(terms)):
        commutes = table.commutes(i)
        for group in groups:
            if commutes[group].all():
                group.append(i)
                break
        else:
            groups.append([i])
    return [[terms[i] for i in group] for group in groups]


def diagonal_rotation_gates(
    circuit: QuantumCircuit,
    tracked: SignedPauli,
    coefficient: float,
) -> None:
    """Append the rotation for one diagonalized (Z-only, signed) string.

    Implements ``exp(i * coefficient * sign * Z_support)`` as a CNOT parity
    chain plus a central ``Rz``.
    """
    support = [q for q in range(tracked.num_qubits) if tracked.z_bit(q)]
    if not support:
        return  # identity up to sign: global phase only
    angle = -2.0 * coefficient * tracked.sign
    for a, b in zip(support, support[1:]):
        circuit.cx(a, b)
    circuit.rz(angle, support[-1])
    for a, b in reversed(list(zip(support, support[1:]))):
        circuit.cx(a, b)


def tk_compile(program: PauliProgram) -> TKResult:
    """Compile a program with the simultaneous-diagonalization strategy."""
    terms = [
        (ws.string, ws.weight * parameter)
        for ws, parameter in program.all_weighted_strings()
        if not ws.string.is_identity
    ]
    circuit = QuantumCircuit(program.num_qubits)
    sets = partition_commuting(terms)
    for group in sets:
        strings = [s for s, _ in group]
        if len(strings) == 1:
            # A singleton gains nothing from diagonalization; synthesize
            # directly (tket does the same for isolated gadgets).
            from ..core.synthesis import pauli_rotation_gates

            circuit.extend(
                pauli_rotation_gates(strings[0], -2.0 * group[0][1])
            )
            continue
        clifford, tracked = simultaneous_diagonalize(strings)
        circuit.compose(clifford)
        for entry, (_, coefficient) in zip(tracked, group):
            diagonal_rotation_gates(circuit, entry, coefficient)
        circuit.compose(clifford.inverse())
    return TKResult(circuit, sets)
