"""Clifford conjugation tracking and simultaneous diagonalization.

This is the substrate of the TK baseline (tket-style ``PauliSimp``): given a
set of *mutually commuting* Pauli strings, find a Clifford circuit ``C``
such that ``U_C P_k U_C^dagger`` is a Z-only (diagonal) string for every
``k``.  Then ``prod_k exp(i c_k P_k)`` compiles to
``C  (diagonal rotations)  C^dagger``.

The algorithm is symplectic Gram-Schmidt elimination (van den Berg & Temme,
Quantum 4, 322 (2020) style): process strings in order; each independent
string consumes a fresh pivot qubit and is reduced to exactly ``+Z_pivot``
using CNOT/S/H/SWAP/X conjugations that provably leave all previously fixed
strings untouched; dependent strings come out diagonal for free.

Signs are tracked exactly — a string conjugated to ``-Z...`` flips the sign
of its rotation angle downstream.

The conjugation state lives on the shared packed engine
(:class:`repro.verify.clifford.SignedPauliTable`): every gate updates all
tracked rows with a handful of word-wide column ops instead of the scalar
per-row per-qubit loop this module used to carry.  The scalar update
tables survive as the reference implementation in ``tests/test_verify.py``
(the scalar-vs-packed migration gate).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..circuit import QuantumCircuit
from ..circuit.gates import OP
from ..pauli import PauliString
from ..verify.clifford import SignedPauli, SignedPauliTable

__all__ = ["ConjugationTracker", "simultaneous_diagonalize"]

_OP_H = OP["h"]
_OP_S = OP["s"]
_OP_SDG = OP["sdg"]
_OP_X = OP["x"]
_OP_CX = OP["cx"]
_OP_SWAP = OP["swap"]


class ConjugationTracker:
    """Applies Clifford gates to a batch of tracked Paulis in the Heisenberg
    picture while recording the gate sequence.

    After processing, ``circuit`` holds gates ``g_1 ... g_m`` (in emission
    order) whose composite unitary ``U = g_m ... g_1`` satisfies
    ``U P U^dagger = tracked value`` for every input Pauli.  The batch is
    one packed :class:`~repro.verify.clifford.SignedPauliTable`; every gate
    conjugates all rows at once.
    """

    def __init__(self, strings: Iterable[PauliString], num_qubits: int):
        self.table = SignedPauliTable.from_strings(strings)
        if self.table.num_qubits != num_qubits:
            raise ValueError(
                f"strings act on {self.table.num_qubits} qubits, "
                f"tracker built for {num_qubits}"
            )
        self.circuit = QuantumCircuit(num_qubits)

    # -- gate applications -------------------------------------------------
    def h(self, q: int) -> None:
        self.table.apply(_OP_H, q)
        self.circuit.h(q)

    def s(self, q: int) -> None:
        self.table.apply(_OP_S, q)
        self.circuit.s(q)

    def sdg(self, q: int) -> None:
        self.table.apply(_OP_SDG, q)
        self.circuit.sdg(q)

    def x(self, q: int) -> None:
        self.table.apply(_OP_X, q)
        self.circuit.x(q)

    def cx(self, control: int, target: int) -> None:
        self.table.apply(_OP_CX, control, target)
        self.circuit.cx(control, target)

    def swap(self, a: int, b: int) -> None:
        self.table.apply(_OP_SWAP, a, b)
        self.circuit.swap(a, b)

    # -- row queries -------------------------------------------------------
    def __len__(self) -> int:
        return self.table.num_rows

    def x_bit(self, row: int, qubit: int) -> int:
        return self.table.x_bit(row, qubit)

    def z_bit(self, row: int, qubit: int) -> int:
        return self.table.z_bit(row, qubit)

    def sign(self, row: int) -> int:
        return self.table.sign(row)

    def is_diagonal(self, row: int) -> bool:
        return self.table.is_diagonal(row)

    def signed(self, row: int) -> SignedPauli:
        return self.table.signed(row)

    def to_signed_paulis(self) -> List[SignedPauli]:
        return self.table.to_signed_paulis()


def simultaneous_diagonalize(
    strings: Sequence[PauliString],
) -> Tuple[QuantumCircuit, List[SignedPauli]]:
    """Find a Clifford ``C`` diagonalizing a mutually-commuting string set.

    Returns ``(clifford_circuit, tracked)`` where ``tracked[k]`` is the
    conjugated form of ``strings[k]``: a signed Z-only string.

    Raises ``ValueError`` if the input strings do not mutually commute.
    """
    if not strings:
        raise ValueError("need at least one string")
    n = strings[0].num_qubits
    for i in range(len(strings)):
        for j in range(i + 1, len(strings)):
            if not strings[i].commutes_with(strings[j]):
                raise ValueError(
                    f"strings {strings[i].label} and {strings[j].label} do not commute"
                )

    tracker = ConjugationTracker(strings, n)
    next_pivot = 0
    for row in range(len(strings)):
        if tracker.is_diagonal(row):
            continue  # dependent (or already diagonal) string: free
        pivot = next_pivot
        next_pivot += 1
        if pivot >= n:
            raise ValueError("more independent strings than qubits")

        # 1. Choose a column with an X component.  Previously fixed strings
        #    are exactly Z_j for pivots j < pivot, and this string commutes
        #    with them, so its X support lives on non-pivot qubits.
        x_cols = [q for q in range(n) if tracker.x_bit(row, q)]
        col = x_cols[0]
        # 2. Collapse all other X bits onto `col` with CNOTs out of `col`.
        for q in x_cols[1:]:
            tracker.cx(col, q)
        # 3. Clear a possible Y at the column, then rotate X -> Z.
        if tracker.z_bit(row, col):
            tracker.s(col)
        tracker.h(col)
        # 4. Move the column onto the pivot qubit.
        if col != pivot:
            tracker.swap(col, pivot)
        # 5. Clear remaining Z bits (string is now Z-only) onto the pivot.
        for q in range(n):
            if q != pivot and tracker.z_bit(row, q):
                tracker.cx(q, pivot)
        # 6. Fix the sign so the string is exactly +Z_pivot.
        if tracker.sign(row) < 0:
            tracker.x(pivot)
        assert tracker.signed(row) == SignedPauli(
            PauliString.from_sparse(n, {pivot: "Z"}), 1
        )

    return tracker.circuit, tracker.to_signed_paulis()
