"""Clifford conjugation tracking and simultaneous diagonalization.

This is the substrate of the TK baseline (tket-style ``PauliSimp``): given a
set of *mutually commuting* Pauli strings, find a Clifford circuit ``C``
such that ``U_C P_k U_C^dagger`` is a Z-only (diagonal) string for every
``k``.  Then ``prod_k exp(i c_k P_k)`` compiles to
``C  (diagonal rotations)  C^dagger``.

The algorithm is symplectic Gram-Schmidt elimination (van den Berg & Temme,
Quantum 4, 322 (2020) style): process strings in order; each independent
string consumes a fresh pivot qubit and is reduced to exactly ``+Z_pivot``
using CNOT/S/H/SWAP/X conjugations that provably leave all previously fixed
strings untouched; dependent strings come out diagonal for free.

Signs are tracked exactly — a string conjugated to ``-Z...`` flips the sign
of its rotation angle downstream.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuit import Gate, QuantumCircuit
from ..pauli import PauliString
from ..pauli import operators as ops

__all__ = ["TrackedPauli", "ConjugationTracker", "simultaneous_diagonalize"]


class TrackedPauli:
    """A Pauli string with a +/-1 sign, mutated in place by conjugation."""

    __slots__ = ("codes", "sign")

    def __init__(self, string: PauliString, sign: int = 1):
        self.codes = bytearray(string.codes)
        self.sign = sign

    def to_string(self) -> PauliString:
        return PauliString(bytes(self.codes))

    def x_bit(self, q: int) -> int:
        return self.codes[q] & 1

    def z_bit(self, q: int) -> int:
        return (self.codes[q] >> 1) & 1

    def set_bits(self, q: int, x: int, z: int) -> None:
        self.codes[q] = (x & 1) | ((z & 1) << 1)

    def is_diagonal(self) -> bool:
        return all((c & 1) == 0 for c in self.codes)

    @property
    def num_qubits(self) -> int:
        return len(self.codes)


# Conjugation tables U sigma U^dagger = sign * sigma' for 1-qubit Cliffords.
# Keyed by Pauli code (I=0, X=1, Z=2, Y=3) -> (sign, new_code).
_H_TABLE = {0: (1, 0), 1: (1, 2), 2: (1, 1), 3: (-1, 3)}
_S_TABLE = {0: (1, 0), 1: (1, 3), 2: (1, 2), 3: (-1, 1)}   # S X S† = Y, S Y S† = -X
_SDG_TABLE = {0: (1, 0), 1: (-1, 3), 2: (1, 2), 3: (1, 1)}
_X_TABLE = {0: (1, 0), 1: (1, 1), 2: (-1, 2), 3: (-1, 3)}


class ConjugationTracker:
    """Applies Clifford gates to a set of tracked Paulis in the Heisenberg
    picture while recording the gate sequence.

    After processing, ``circuit`` holds gates ``g_1 ... g_m`` (in emission
    order) whose composite unitary ``U = g_m ... g_1`` satisfies
    ``U P U^dagger = tracked value`` for every input Pauli.
    """

    def __init__(self, paulis: Sequence[TrackedPauli], num_qubits: int):
        self.paulis = list(paulis)
        self.circuit = QuantumCircuit(num_qubits)

    # -- gate applications -------------------------------------------------
    def _apply_1q(self, table, q: int) -> None:
        for p in self.paulis:
            sign, new = table[p.codes[q]]
            p.codes[q] = new
            p.sign *= sign

    def h(self, q: int) -> None:
        self._apply_1q(_H_TABLE, q)
        self.circuit.h(q)

    def s(self, q: int) -> None:
        self._apply_1q(_S_TABLE, q)
        self.circuit.s(q)

    def sdg(self, q: int) -> None:
        self._apply_1q(_SDG_TABLE, q)
        self.circuit.sdg(q)

    def x(self, q: int) -> None:
        self._apply_1q(_X_TABLE, q)
        self.circuit.x(q)

    def cx(self, control: int, target: int) -> None:
        for p in self.paulis:
            xc, zc = p.x_bit(control), p.z_bit(control)
            xt, zt = p.x_bit(target), p.z_bit(target)
            # CHP update: sign flips when x_c z_t (x_t ^ z_c ^ 1) = 1.
            if xc & zt & (xt ^ zc ^ 1):
                p.sign *= -1
            p.set_bits(target, xt ^ xc, zt)
            p.set_bits(control, xc, zc ^ zt)
        self.circuit.cx(control, target)

    def swap(self, a: int, b: int) -> None:
        for p in self.paulis:
            p.codes[a], p.codes[b] = p.codes[b], p.codes[a]
        self.circuit.swap(a, b)


def simultaneous_diagonalize(
    strings: Sequence[PauliString],
) -> Tuple[QuantumCircuit, List[TrackedPauli]]:
    """Find a Clifford ``C`` diagonalizing a mutually-commuting string set.

    Returns ``(clifford_circuit, tracked)`` where ``tracked[k]`` is the
    conjugated form of ``strings[k]``: a signed Z-only string.

    Raises ``ValueError`` if the input strings do not mutually commute.
    """
    if not strings:
        raise ValueError("need at least one string")
    n = strings[0].num_qubits
    for i in range(len(strings)):
        for j in range(i + 1, len(strings)):
            if not strings[i].commutes_with(strings[j]):
                raise ValueError(
                    f"strings {strings[i].label} and {strings[j].label} do not commute"
                )

    tracker = ConjugationTracker([TrackedPauli(s) for s in strings], n)
    next_pivot = 0
    for p in tracker.paulis:
        if p.is_diagonal():
            continue  # dependent (or already diagonal) string: free
        pivot = next_pivot
        next_pivot += 1
        if pivot >= n:
            raise ValueError("more independent strings than qubits")

        # 1. Choose a column with an X component.  Previously fixed strings
        #    are exactly Z_j for pivots j < pivot, and this string commutes
        #    with them, so its X support lives on non-pivot qubits.
        x_cols = [q for q in range(n) if p.x_bit(q)]
        col = x_cols[0]
        # 2. Collapse all other X bits onto `col` with CNOTs out of `col`.
        for q in x_cols[1:]:
            tracker.cx(col, q)
        # 3. Clear a possible Y at the column, then rotate X -> Z.
        if p.z_bit(col):
            tracker.s(col)
        tracker.h(col)
        # 4. Move the column onto the pivot qubit.
        if col != pivot:
            tracker.swap(col, pivot)
        # 5. Clear remaining Z bits (string is now Z-only) onto the pivot.
        for q in range(n):
            if q != pivot and p.z_bit(q):
                tracker.cx(q, pivot)
        # 6. Fix the sign so the string is exactly +Z_pivot.
        if p.sign < 0:
            tracker.x(pivot)
        assert p.to_string().label == _z_label(n, pivot) and p.sign == 1

    return tracker.circuit, tracker.paulis


def _z_label(n: int, qubit: int) -> str:
    chars = ["I"] * n
    chars[n - 1 - qubit] = "Z"
    return "".join(chars)
