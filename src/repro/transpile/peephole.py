"""Peephole gate-cancellation passes.

These are the generic "level 3"-style cleanups that the paper applies after
every frontend (Qiskit's ``Optimize1qGates`` + ``CommutativeCancellation``
equivalents):

* :func:`cancel_adjacent_pairs` — remove a gate and its immediate inverse
  when they are adjacent on *all* their wires;
* :func:`merge_rotations` — fuse runs of equal-axis rotations on one wire and
  drop angle-zero rotations (mod 2*pi, global phase ignored);
* :func:`commutative_cancel` — cancel CNOT pairs separated only by gates
  that commute through the control (diagonal) or target (X-axis) wire;
* :func:`optimize` — run everything to a fixed point.

The implementation works on a mutable gate list with per-wire successor
scans; each sweep is O(gates * wires) and the fixpoint loop terminates
because every rewrite strictly reduces the gate count.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..circuit import Gate, QuantumCircuit
from ..circuit.gates import ROTATION_GATES, inverse_gate

__all__ = [
    "cancel_adjacent_pairs",
    "merge_rotations",
    "commutative_cancel",
    "fuse_swap_cx",
    "optimize",
]

_TWO_PI = 2.0 * math.pi

#: Single-qubit gates diagonal in Z: they commute through a CNOT *control*.
_DIAGONAL_1Q = frozenset({"z", "s", "sdg", "rz"})
#: Single-qubit gates diagonal in X: they commute through a CNOT *target*.
_X_AXIS_1Q = frozenset({"x", "rx"})

_MERGE_AXIS = {"rz": "z", "rx": "x", "ry": "y", "z": "z", "x": "x", "y": "y",
               "s": "z", "sdg": "z", "h": "h", "yh": "yh"}

_FIXED_ANGLE = {"z": math.pi, "x": math.pi, "y": math.pi,
                "s": math.pi / 2.0, "sdg": -math.pi / 2.0}


def _wire_sequences(gates: List[Optional[Gate]]) -> Dict[int, List[int]]:
    wires: Dict[int, List[int]] = {}
    for idx, gate in enumerate(gates):
        if gate is None:
            continue
        for q in gate.qubits:
            wires.setdefault(q, []).append(idx)
    return wires


def _rebuild(circuit: QuantumCircuit, gates: List[Optional[Gate]]) -> QuantumCircuit:
    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    out.extend(g for g in gates if g is not None)
    return out


def cancel_adjacent_pairs(circuit: QuantumCircuit) -> Tuple[QuantumCircuit, int]:
    """Cancel gate/inverse pairs adjacent on every shared wire.

    Returns ``(new_circuit, removed_gate_count)``.
    """
    gates: List[Optional[Gate]] = list(circuit.gates)
    removed = 0
    changed = True
    while changed:
        changed = False
        wires = _wire_sequences(gates)
        position = {
            (idx, q): pos
            for q, seq in wires.items()
            for pos, idx in enumerate(seq)
        }
        for idx, gate in enumerate(gates):
            if gate is None:
                continue
            succ = _common_successor(gates, wires, position, idx, gate)
            if succ is None:
                continue
            partner = gates[succ]
            if partner is None:
                continue
            if partner == inverse_gate(gate) and partner.qubits == gate.qubits:
                if gate.name in ROTATION_GATES:
                    continue  # rotation pairs are handled by merge_rotations
                gates[idx] = None
                gates[succ] = None
                removed += 2
                changed = True
        if changed:
            gates = [g for g in gates if g is not None]
    return _rebuild(circuit, gates), removed


def _common_successor(gates, wires, position, idx, gate) -> Optional[int]:
    """Index of the next gate if it immediately follows ``idx`` on all wires."""
    succ = None
    for q in gate.qubits:
        seq = wires[q]
        pos = position[(idx, q)]
        if pos + 1 >= len(seq):
            return None
        nxt = seq[pos + 1]
        if succ is None:
            succ = nxt
        elif succ != nxt:
            return None
    return succ


def merge_rotations(circuit: QuantumCircuit) -> Tuple[QuantumCircuit, int]:
    """Fuse adjacent same-axis single-qubit rotations; drop ~zero angles.

    ``h h`` and ``yh yh`` pairs also collapse here (they are
    ``pi``-rotations about fixed axes up to phase).  Angles are reduced mod
    ``2*pi``; an angle within 1e-12 of 0 (or ``2*pi``) removes the gate
    entirely (``rz(2*pi) = -I`` is a global phase).
    """
    gates: List[Optional[Gate]] = list(circuit.gates)
    removed = 0
    changed = True
    while changed:
        changed = False
        wires = _wire_sequences(gates)
        for q, seq in wires.items():
            for pos in range(len(seq) - 1):
                i, j = seq[pos], seq[pos + 1]
                a, b = gates[i], gates[j]
                if a is None or b is None:
                    continue
                if a.num_qubits != 1 or b.num_qubits != 1:
                    continue
                merged = _merge_pair(a, b)
                if merged is None:
                    continue
                gates[i] = None
                gates[j] = merged if merged != "drop" else None
                removed += 2 if merged == "drop" else 1
                changed = True
        if changed:
            gates = [g for g in gates if g is not None]
    return _rebuild(circuit, gates), removed


def _merge_pair(a: Gate, b: Gate):
    """Merge two adjacent single-qubit gates on the same wire, or None."""
    axis_a = _MERGE_AXIS.get(a.name)
    axis_b = _MERGE_AXIS.get(b.name)
    if axis_a is None or axis_a != axis_b:
        return None
    qubit = a.qubits
    if axis_a in ("h", "yh"):
        # self-inverse fixed gates: equal pair drops
        return "drop" if a.name == b.name else None
    angle_a = a.params[0] if a.params else _FIXED_ANGLE[a.name]
    angle_b = b.params[0] if b.params else _FIXED_ANGLE[b.name]
    total = math.remainder(angle_a + angle_b, _TWO_PI)
    if abs(total) < 1e-12:
        return "drop"
    return Gate(f"r{axis_a}", qubit, (total,))


def commutative_cancel(circuit: QuantumCircuit) -> Tuple[QuantumCircuit, int]:
    """Cancel equal CNOT pairs separated only by commuting 1q gates.

    For a ``cx(c, t)``: diagonal gates may sit on the control wire and
    X-axis gates on the target wire between the pair.
    """
    gates: List[Optional[Gate]] = list(circuit.gates)
    removed = 0
    changed = True
    while changed:
        changed = False
        wires = _wire_sequences(gates)
        position = {
            (idx, q): pos
            for q, seq in wires.items()
            for pos, idx in enumerate(seq)
        }
        for idx, gate in enumerate(gates):
            if gate is None or gate.name != "cx":
                continue
            control, target = gate.qubits
            j_c = _next_blocking(gates, wires, position, idx, control, _DIAGONAL_1Q)
            j_t = _next_blocking(gates, wires, position, idx, target, _X_AXIS_1Q)
            if j_c is None or j_c != j_t:
                continue
            partner = gates[j_c]
            if partner is not None and partner.name == "cx" and partner.qubits == gate.qubits:
                gates[idx] = None
                gates[j_c] = None
                removed += 2
                changed = True
        if changed:
            gates = [g for g in gates if g is not None]
    return _rebuild(circuit, gates), removed


def _next_blocking(gates, wires, position, idx, qubit, transparent) -> Optional[int]:
    """Next gate on ``qubit`` after ``idx`` that is not a transparent 1q gate."""
    seq = wires[qubit]
    pos = position[(idx, qubit)]
    for nxt in seq[pos + 1:]:
        gate = gates[nxt]
        if gate is None:
            continue
        if gate.num_qubits == 1 and gate.name in transparent:
            continue
        return nxt
    return None


def fuse_swap_cx(circuit: QuantumCircuit) -> Tuple[QuantumCircuit, int]:
    """Fuse a SWAP with an adjacent CNOT on the same qubit pair.

    ``SWAP = CX(a,b) CX(b,a) CX(a,b)``, so a neighbouring CNOT absorbs one:

    * ``[swap(a,b), cx(a,b)]`` -> ``[cx(a,b), cx(b,a)]``
    * ``[cx(a,b), swap(a,b)]`` -> ``[cx(b,a), cx(a,b)]``

    Each fusion turns 3+1 hardware CNOTs into 2 on the same coupled pair,
    so routed circuits stay valid.  Returns ``(circuit, fused_count)``.
    """
    gates: List[Optional[Gate]] = list(circuit.gates)
    fused = 0
    changed = True
    while changed:
        changed = False
        wires = _wire_sequences(gates)
        position = {
            (idx, q): pos
            for q, seq in wires.items()
            for pos, idx in enumerate(seq)
        }
        for idx, gate in enumerate(gates):
            if gate is None:
                continue
            succ = _common_successor(gates, wires, position, idx, gate)
            if succ is None:
                continue
            partner = gates[succ]
            if partner is None or set(partner.qubits) != set(gate.qubits):
                continue
            if gate.name == "swap" and partner.name == "cx":
                # [swap(a,b), cx(c,t)] -> [cx(c,t), cx(t,c)]
                c, t = partner.qubits
                gates[idx] = Gate("cx", (c, t))
                gates[succ] = Gate("cx", (t, c))
            elif gate.name == "cx" and partner.name == "swap":
                # [cx(c,t), swap(a,b)] -> [cx(t,c), cx(c,t)]
                c, t = gate.qubits
                gates[idx] = Gate("cx", (t, c))
                gates[succ] = Gate("cx", (c, t))
            else:
                continue
            fused += 1
            changed = True
            break
    return _rebuild(circuit, gates), fused


def optimize(circuit: QuantumCircuit, max_rounds: int = 50) -> QuantumCircuit:
    """Run all peephole passes to a fixed point."""
    current = circuit
    for _ in range(max_rounds):
        total = 0
        current, n = cancel_adjacent_pairs(current)
        total += n
        current, n = merge_rotations(current)
        total += n
        current, n = commutative_cancel(current)
        total += n
        current, n = fuse_swap_cx(current)
        total += n
        if total == 0:
            break
    return current
