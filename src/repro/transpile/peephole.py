"""Worklist-driven peephole rewrite engine on the columnar gate tape.

These are the generic "level 3"-style cleanups that the paper applies after
every frontend (Qiskit's ``Optimize1qGates`` + ``CommutativeCancellation``
equivalents), rebuilt as *local rules* over the
:class:`~repro.circuit.tape.GateTape`:

* **cancel** — remove a gate and its immediate inverse when they are
  adjacent on *all* their wires;
* **merge** — fuse runs of equal-axis single-qubit rotations on one wire
  and drop angle-zero rotations (mod 2*pi, global phase ignored);
* **commute** — cancel CNOT pairs separated only by gates that commute
  through the control (diagonal) or target (X-axis) wire;
* **fuse** — absorb a CNOT into an adjacent SWAP on the same pair.

Instead of re-deriving wire sequences and position dicts on every sweep,
the engine keeps one dirty-site worklist: it is seeded with every gate
once, and a rewrite re-seeds only the edited neighborhood (the spliced-in
wire neighbours, plus the transparent run behind the edit so a newly
unblocked CNOT walk is revisited).  Every firing strictly shrinks
``(gate count, swap count)`` lexicographically, so the fixpoint is
O(gates + rewrites) rather than O(sweeps * gates * wires).

The public functions keep the seed signatures — each returns
``(new_circuit, rewrite_count)`` and :func:`optimize` runs all rules to a
joint fixpoint.  The original rebuild-the-world implementations live on
unchanged in :mod:`repro.transpile.reference` as the equivalence oracle.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Tuple

from ..circuit import QuantumCircuit
from ..circuit.gates import OP, OPCODES, OP_INVERSE, OP_ROTATION
from ..circuit.tape import NO_SLOT, GateTape

__all__ = [
    "cancel_adjacent_pairs",
    "merge_rotations",
    "commutative_cancel",
    "fuse_swap_cx",
    "optimize",
    "run_rules",
]

_TWO_PI = 2.0 * math.pi

_OP_CX = OP["cx"]
_OP_CZ = OP["cz"]
_OP_SWAP = OP["swap"]
_N_OPS = len(OPCODES)

#: Single-qubit gates diagonal in Z: they commute through a CNOT *control*.
_DIAGONAL_1Q = ("z", "s", "sdg", "rz")
#: Single-qubit gates diagonal in X: they commute through a CNOT *target*.
_X_AXIS_1Q = ("x", "rx")

_IS_DIAG = bytearray(_N_OPS)
for _name in _DIAGONAL_1Q:
    _IS_DIAG[OP[_name]] = 1
_IS_XAXIS = bytearray(_N_OPS)
for _name in _X_AXIS_1Q:
    _IS_XAXIS[OP[_name]] = 1
#: Transparent for *some* CNOT walk — the backward re-seeding over-approximation.
_IS_TRANSPARENT = bytes(d | x for d, x in zip(_IS_DIAG, _IS_XAXIS))

# Rotation-merge tables: per opcode, the merge axis (-1: not mergeable) and
# the fixed angle contributed by non-parametric gates.
_AXIS_NONE, _AXIS_Z, _AXIS_X, _AXIS_Y, _AXIS_H, _AXIS_YH = -1, 0, 1, 2, 3, 4
_MERGE_AXIS = [_AXIS_NONE] * _N_OPS
_FIXED_ANGLE = [0.0] * _N_OPS
for _name, _axis, _angle in (
    ("z", _AXIS_Z, math.pi), ("s", _AXIS_Z, math.pi / 2.0),
    ("sdg", _AXIS_Z, -math.pi / 2.0), ("rz", _AXIS_Z, None),
    ("x", _AXIS_X, math.pi), ("rx", _AXIS_X, None),
    ("y", _AXIS_Y, math.pi), ("ry", _AXIS_Y, None),
    ("h", _AXIS_H, None), ("yh", _AXIS_YH, None),
):
    _MERGE_AXIS[OP[_name]] = _axis
    if _angle is not None:
        _FIXED_ANGLE[OP[_name]] = _angle
_AXIS_ROTATION_OP = {_AXIS_Z: OP["rz"], _AXIS_X: OP["rx"], _AXIS_Y: OP["ry"]}
_IS_ROTATION = bytearray(_N_OPS)
for _op in OP_ROTATION:
    _IS_ROTATION[_op] = 1


def _engine(
    tape: GateTape,
    do_cancel: bool,
    do_merge: bool,
    do_commute: bool,
    do_fuse: bool,
) -> Tuple[int, int, int, int]:
    """Run the enabled rules to a joint fixpoint on ``tape`` (in place).

    Returns ``(cancelled, merged, commuted, fused)`` rewrite counts with the
    seed passes' units: removed gates for cancel/merge/commute, fusion
    firings for fuse.
    """
    tape.ensure_links()
    ops = tape.op
    q0s, q1s = tape.q0, tape.q1
    params = tape.param
    alive = tape.alive
    nxt0, nxt1 = tape.nxt0, tape.nxt1
    prv0, prv1 = tape.prv0, tape.prv1
    n = len(ops)
    pending = bytearray(n)
    queue = deque(tape.iter_slots())
    for slot in queue:
        pending[slot] = 1
    # Fuse never shrinks the gate count, so it must not steal a rewrite
    # from the shrinking rules (e.g. fusing the swap of [swap, cx, cx]
    # would destroy the pending cx/cx cancellation).  It therefore runs
    # from a second, lower-priority queue that is only drained when the
    # primary queue is empty — the global analogue of the seed's
    # cancel/merge/commute-before-fuse pass order.
    fuse_pending = bytearray(n)
    fuse_queue: deque = deque()
    if do_fuse:
        fuse_queue.extend(queue)
        for slot in fuse_queue:
            fuse_pending[slot] = 1

    cancelled = merged = commuted = fused = 0

    def wire_next(slot: int, wire: int) -> int:
        return nxt0[slot] if q0s[slot] == wire else nxt1[slot]

    def wire_prev(slot: int, wire: int) -> int:
        return prv0[slot] if q0s[slot] == wire else prv1[slot]

    def push(slot: int) -> None:
        if slot != NO_SLOT and alive[slot]:
            if not pending[slot]:
                pending[slot] = 1
                queue.append(slot)
            if do_fuse and not fuse_pending[slot]:
                fuse_pending[slot] = 1
                fuse_queue.append(slot)

    def reseed_before(slot: int, wire: int) -> None:
        """Re-seed the wire neighborhood left of a removed/edited site.

        The immediate predecessor may now cancel/merge/fuse with its new
        successor, and any CNOT separated from the site only by transparent
        single-qubit gates has a freshly unblocked commuting walk.
        """
        walk = slot
        while walk != NO_SLOT:
            push(walk)
            if q1s[walk] != NO_SLOT or not _IS_TRANSPARENT[ops[walk]]:
                break
            walk = wire_prev(walk, wire)

    def remove(slot: int) -> None:
        """Remove a gate and re-seed the spliced-together neighbourhood."""
        w0, w1 = q0s[slot], q1s[slot]
        before0, after0 = wire_prev(slot, w0), wire_next(slot, w0)
        if w1 != NO_SLOT:
            before1, after1 = wire_prev(slot, w1), wire_next(slot, w1)
        tape.remove(slot)
        reseed_before(before0, w0)
        push(after0)
        if w1 != NO_SLOT:
            reseed_before(before1, w1)
            push(after1)

    while True:
        if queue:
            from_fuse_queue = False
            g = queue.popleft()
            pending[g] = 0
        elif fuse_queue:
            from_fuse_queue = True
            g = fuse_queue.popleft()
            fuse_pending[g] = 0
        else:
            break
        if not alive[g]:
            continue
        op_g = ops[g]
        a = q0s[g]
        b = q1s[g]

        # ---- rule: SWAP/CNOT fusion (lower priority: primary queue empty)
        if from_fuse_queue:
            if b != NO_SLOT and (op_g == _OP_SWAP or op_g == _OP_CX):
                succ = nxt0[g] if nxt0[g] == nxt1[g] else NO_SLOT
                if succ != NO_SLOT:
                    op_s = ops[succ]
                    if op_g == _OP_SWAP and op_s == _OP_CX:
                        # [swap(a,b), cx(c,t)] -> [cx(c,t), cx(t,c)]
                        c, t = q0s[succ], q1s[succ]
                        tape.set_two_qubit_op(g, _OP_CX, c, t)
                        tape.set_two_qubit_op(succ, _OP_CX, t, c)
                    elif op_g == _OP_CX and op_s == _OP_SWAP:
                        # [cx(c,t), swap(a,b)] -> [cx(t,c), cx(c,t)]
                        tape.set_two_qubit_op(succ, _OP_CX, a, b)
                        tape.set_two_qubit_op(g, _OP_CX, b, a)
                    else:
                        succ = NO_SLOT
                    if succ != NO_SLOT:
                        fused += 1
                        reseed_before(wire_prev(g, a), a)
                        reseed_before(wire_prev(g, b), b)
                        push(g)
                        push(succ)
                        push(wire_next(succ, a))
                        push(wire_next(succ, b))
            continue

        # ---- rule: adjacent inverse-pair cancellation ------------------
        if do_cancel and not _IS_ROTATION[op_g]:
            if b == NO_SLOT:
                succ = nxt0[g]
            else:
                succ = nxt0[g] if nxt0[g] == nxt1[g] else NO_SLOT
            if succ != NO_SLOT and ops[succ] == OP_INVERSE[op_g]:
                # Same wires by construction; two-qubit partners must also
                # match operand order exactly (the seed oracle does not
                # cancel reversed cz/swap pairs, and the equivalence tests
                # pin exact gate counts against it).
                if b == NO_SLOT or q0s[succ] == a:
                    remove(g)
                    remove(succ)
                    cancelled += 2
                    continue

        # ---- rule: same-axis rotation merge ----------------------------
        if do_merge and b == NO_SLOT:
            axis = _MERGE_AXIS[op_g]
            if axis != _AXIS_NONE:
                succ = nxt0[g]
                if (
                    succ != NO_SLOT
                    and q1s[succ] == NO_SLOT
                    and _MERGE_AXIS[ops[succ]] == axis
                ):
                    op_s = ops[succ]
                    if axis >= _AXIS_H:
                        # Self-inverse fixed gates: an equal pair drops.
                        if op_s == op_g:
                            remove(g)
                            remove(succ)
                            merged += 2
                            continue
                    else:
                        angle_g = params[g] if _IS_ROTATION[op_g] else _FIXED_ANGLE[op_g]
                        angle_s = params[succ] if _IS_ROTATION[op_s] else _FIXED_ANGLE[op_s]
                        total = math.remainder(angle_g + angle_s, _TWO_PI)
                        if abs(total) < 1e-12:
                            remove(g)
                            remove(succ)
                            merged += 2
                        else:
                            remove(g)
                            tape.set_rotation(succ, _AXIS_ROTATION_OP[axis], total)
                            push(succ)
                            merged += 1
                        continue

        # ---- rule: CNOT pair cancellation through commuting gates ------
        if do_commute and op_g == _OP_CX:
            walk = wire_next(g, a)
            while walk != NO_SLOT and q1s[walk] == NO_SLOT and _IS_DIAG[ops[walk]]:
                walk = wire_next(walk, a)
            j_c = walk
            if j_c != NO_SLOT:
                walk = nxt1[g]
                while walk != NO_SLOT and q1s[walk] == NO_SLOT and _IS_XAXIS[ops[walk]]:
                    walk = wire_next(walk, b)
                if (
                    walk == j_c
                    and ops[j_c] == _OP_CX
                    and q0s[j_c] == a
                    and q1s[j_c] == b
                ):
                    remove(g)
                    remove(j_c)
                    commuted += 2
                    continue

    return cancelled, merged, commuted, fused


def _run(
    circuit: QuantumCircuit,
    do_cancel: bool = False,
    do_merge: bool = False,
    do_commute: bool = False,
    do_fuse: bool = False,
) -> Tuple[QuantumCircuit, Tuple[int, int, int, int]]:
    tape = circuit.tape.copy()
    counts = _engine(tape, do_cancel, do_merge, do_commute, do_fuse)
    out = QuantumCircuit.from_tape(tape.compact(), name=circuit.name)
    return out, counts


def run_rules(
    circuit: QuantumCircuit,
    cancel: bool = False,
    merge: bool = False,
    commute: bool = False,
    fuse: bool = False,
) -> Tuple[QuantumCircuit, int]:
    """Run a subset of rewrite rules to a joint fixpoint in one engine pass.

    Returns ``(new_circuit, total_rewrite_count)``.  The pipeline levels
    use this to avoid one tape copy per pass.
    """
    out, (cancelled, merged, commuted, fused) = _run(
        circuit, do_cancel=cancel, do_merge=merge, do_commute=commute,
        do_fuse=fuse,
    )
    return out, cancelled + merged + commuted + fused


def cancel_adjacent_pairs(circuit: QuantumCircuit) -> Tuple[QuantumCircuit, int]:
    """Cancel gate/inverse pairs adjacent on every shared wire.

    Returns ``(new_circuit, removed_gate_count)``.
    """
    out, (cancelled, _, _, _) = _run(circuit, do_cancel=True)
    return out, cancelled


def merge_rotations(circuit: QuantumCircuit) -> Tuple[QuantumCircuit, int]:
    """Fuse adjacent same-axis single-qubit rotations; drop ~zero angles.

    ``h h`` and ``yh yh`` pairs also collapse here (they are
    ``pi``-rotations about fixed axes up to phase).  Angles are reduced mod
    ``2*pi``; an angle within 1e-12 of 0 (or ``2*pi``) removes the gate
    entirely (``rz(2*pi) = -I`` is a global phase).
    """
    out, (_, merged, _, _) = _run(circuit, do_merge=True)
    return out, merged


def commutative_cancel(circuit: QuantumCircuit) -> Tuple[QuantumCircuit, int]:
    """Cancel equal CNOT pairs separated only by commuting 1q gates.

    For a ``cx(c, t)``: diagonal gates may sit on the control wire and
    X-axis gates on the target wire between the pair.
    """
    out, (_, _, commuted, _) = _run(circuit, do_commute=True)
    return out, commuted


def fuse_swap_cx(circuit: QuantumCircuit) -> Tuple[QuantumCircuit, int]:
    """Fuse a SWAP with an adjacent CNOT on the same qubit pair.

    ``SWAP = CX(a,b) CX(b,a) CX(a,b)``, so a neighbouring CNOT absorbs one:

    * ``[swap(a,b), cx(a,b)]`` -> ``[cx(a,b), cx(b,a)]``
    * ``[cx(a,b), swap(a,b)]`` -> ``[cx(b,a), cx(a,b)]``

    Each fusion turns 3+1 hardware CNOTs into 2 on the same coupled pair,
    so routed circuits stay valid.  Returns ``(circuit, fused_count)``.
    """
    out, (_, _, _, fused) = _run(circuit, do_fuse=True)
    return out, fused


def optimize(circuit: QuantumCircuit, max_rounds: int = 50) -> QuantumCircuit:
    """Run all rewrite rules to a joint fixed point.

    ``max_rounds`` is kept for signature compatibility with the seed
    sweep-based implementation; the worklist engine always runs to its
    (finite) fixpoint in one invocation.
    """
    del max_rounds
    out, _ = _run(
        circuit, do_cancel=True, do_merge=True, do_commute=True, do_fuse=True
    )
    return out
