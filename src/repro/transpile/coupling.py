"""Device coupling maps.

A :class:`CouplingMap` is an undirected connectivity graph over physical
qubits with cached all-pairs shortest-path distances, plus optional per-edge
error rates used by the noise-aware passes (Section 5.2 uses the calibration
data to pick low-error paths).

Device generators:

* :func:`linear` / :func:`ring` / :func:`grid` / :func:`full` — standard
  academic topologies;
* :func:`heavy_hex` — parametric IBM-style heavy-hexagon lattice;
* :func:`manhattan_65` — a 65-qubit heavy-hex instance standing in for
  IBM Manhattan (the paper's SC target);
* :func:`melbourne` — the 15-qubit ladder of ibmq_16_melbourne (the paper's
  real-system device; the device exposes 15 usable qubits).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

__all__ = [
    "CouplingMap",
    "linear",
    "ring",
    "grid",
    "full",
    "heavy_hex",
    "manhattan_65",
    "melbourne",
    "falcon_27",
    "sycamore_like",
    "ion_trap",
]


class CouplingMap:
    """Undirected qubit-connectivity graph with distance queries."""

    def __init__(
        self,
        edges: Iterable[Tuple[int, int]],
        num_qubits: Optional[int] = None,
        name: str = "",
    ):
        edge_list = [(int(a), int(b)) for a, b in edges]
        for a, b in edge_list:
            if a < 0 or b < 0:
                raise ValueError(f"edge ({a}, {b}) has a negative qubit index")
            if a == b:
                raise ValueError(f"edge ({a}, {b}) is a self-loop")
        inferred = max((max(a, b) for a, b in edge_list), default=-1) + 1
        if num_qubits is None:
            if not edge_list:
                raise ValueError(
                    "a coupling map needs edges or an explicit qubit count"
                )
            self.num_qubits = inferred
        else:
            # ``num_qubits`` may legitimately exceed the inferred count
            # (isolated trailing qubits), but an explicit 0 is not "use the
            # default": a device with no qubits is an error, not a fallback.
            self.num_qubits = int(num_qubits)
            if self.num_qubits < 1:
                raise ValueError(
                    f"num_qubits must be >= 1, got {self.num_qubits}"
                )
            if inferred > self.num_qubits:
                raise ValueError(
                    f"edge endpoints reach qubit {inferred - 1} but "
                    f"num_qubits is {self.num_qubits}"
                )
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(self.num_qubits))
        self.graph.add_edges_from(edge_list)
        self.name = name
        self._dist: Optional[List[List[int]]] = None
        self._fully_connected: Optional[bool] = None

    # ------------------------------------------------------------------
    @property
    def edges(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(tuple(sorted(e)) for e in self.graph.edges())

    def is_connected(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    def neighbors(self, qubit: int) -> Tuple[int, ...]:
        return tuple(self.graph.neighbors(qubit))

    def degree(self, qubit: int) -> int:
        return self.graph.degree(qubit)

    @property
    def is_fully_connected(self) -> bool:
        """True when every pair of qubits has a path between them.

        A trimmed :func:`heavy_hex` can orphan bridge qubits, and an
        explicit ``num_qubits`` larger than the edge span leaves isolated
        trailing qubits; both make the graph disconnected.
        """
        if self._fully_connected is None:
            self._fully_connected = (
                self.num_qubits > 0 and nx.is_connected(self.graph)
            )
        return self._fully_connected

    def _distance_matrix(self) -> List[List[int]]:
        if self._dist is None:
            n = self.num_qubits
            # Disconnected pairs keep the 2n sentinel (no hop count exists);
            # distance() refuses to serve it — see below.
            dist = [[n * 2] * n for _ in range(n)]
            for src, lengths in nx.all_pairs_shortest_path_length(self.graph):
                row = dist[src]
                for dst, d in lengths.items():
                    row[dst] = d
            self._dist = dist
        return self._dist

    def distance(self, a: int, b: int) -> int:
        """Shortest hop count between two physical qubits.

        Raises ``ValueError`` for a disconnected pair instead of returning
        the internal ``2 * num_qubits`` placeholder: routing on a
        fictitious distance silently produces unroutable circuits.
        """
        d = self._distance_matrix()[a][b]
        if d >= self.num_qubits:  # real shortest paths use < n hops
            raise ValueError(
                f"qubits {a} and {b} are disconnected in coupling map "
                f"{self.name or '<anonymous>'}; check is_fully_connected "
                f"before routing"
            )
        return d

    def distance_matrix(self) -> List[List[int]]:
        """All-pairs hop-count matrix (cached; do not mutate).

        Disconnected pairs hold a ``2 * num_qubits`` sentinel; callers that
        cannot tolerate it should check :attr:`is_fully_connected` first
        (:func:`repro.transpile.route` does).
        """
        return self._distance_matrix()

    def shortest_path(self, a: int, b: int, weight=None) -> List[int]:
        """Shortest path between two physical qubits.

        ``weight`` may be a callable ``(u, v) -> float`` (e.g. an error-rate
        cost) or ``None`` for hop count.
        """
        if weight is None:
            return nx.shortest_path(self.graph, a, b)
        return nx.shortest_path(
            self.graph, a, b, weight=lambda u, v, _attrs: weight(u, v)
        )

    def subgraph_is_connected(self, qubits: Sequence[int]) -> bool:
        sub = self.graph.subgraph(qubits)
        return len(qubits) > 0 and nx.is_connected(sub)

    def connected_component_within(self, qubit: int, allowed: Sequence[int]) -> Tuple[int, ...]:
        """Connected component of ``qubit`` in the subgraph induced by
        ``allowed`` (used for root selection, Algorithm 3 line 5)."""
        allowed_set = set(allowed)
        if qubit not in allowed_set:
            return (qubit,)
        sub = self.graph.subgraph(allowed_set)
        return tuple(sorted(nx.node_connected_component(sub, qubit)))

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"CouplingMap{tag}(qubits={self.num_qubits}, "
            f"edges={self.graph.number_of_edges()})"
        )


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------

def linear(num_qubits: int) -> CouplingMap:
    """A 1-D chain."""
    return CouplingMap(
        [(i, i + 1) for i in range(num_qubits - 1)],
        num_qubits=num_qubits,
        name=f"linear-{num_qubits}",
    )


def ring(num_qubits: int) -> CouplingMap:
    """A 1-D ring."""
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    return CouplingMap(edges, num_qubits=num_qubits, name=f"ring-{num_qubits}")


def grid(rows: int, cols: int) -> CouplingMap:
    """A 2-D grid, row-major numbering."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
    return CouplingMap(edges, num_qubits=rows * cols, name=f"grid-{rows}x{cols}")


def full(num_qubits: int) -> CouplingMap:
    """All-to-all connectivity (the FT backend's effective topology)."""
    edges = [
        (i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)
    ]
    return CouplingMap(edges, num_qubits=num_qubits, name=f"full-{num_qubits}")


def heavy_hex(rows: int, row_len: int, trim: int = 0) -> CouplingMap:
    """Parametric heavy-hexagon lattice in the IBM style.

    ``rows`` horizontal chains of ``row_len`` qubits each, with bridge qubits
    between consecutive rows at every fourth column (offset alternating by
    two per row pair).  ``trim`` removes that many highest-numbered qubits.
    """
    edges: List[Tuple[int, int]] = []
    row_start = [r * row_len for r in range(rows)]
    next_id = rows * row_len
    for r in range(rows):
        base = row_start[r]
        for c in range(row_len - 1):
            edges.append((base + c, base + c + 1))
    for r in range(rows - 1):
        offset = 0 if r % 2 == 0 else 2
        for c in range(offset, row_len, 4):
            bridge = next_id
            next_id += 1
            edges.append((row_start[r] + c, bridge))
            edges.append((bridge, row_start[r + 1] + c))
    num = next_id - trim
    kept = [(a, b) for a, b in edges if a < num and b < num]
    return CouplingMap(kept, num_qubits=num, name=f"heavy-hex-{rows}x{row_len}")


def manhattan_65() -> CouplingMap:
    """A 65-qubit heavy-hex device standing in for IBM Manhattan.

    The exact IBM edge list is not reproduced; what matters for the paper's
    SC experiments is the sparse heavy-hex connectivity class (degree <= 3),
    which this instance matches.
    """
    cmap = heavy_hex(rows=5, row_len=11, trim=2)
    assert cmap.num_qubits == 65, cmap.num_qubits
    cmap.name = "manhattan-65"
    return cmap


def falcon_27() -> CouplingMap:
    """A 27-qubit heavy-hex device in the IBM Falcon class."""
    cmap = heavy_hex(rows=3, row_len=8, trim=1)
    assert cmap.num_qubits == 27, cmap.num_qubits
    cmap.name = "falcon-27"
    return cmap


def sycamore_like(rows: int = 5, cols: int = 6) -> CouplingMap:
    """A Sycamore-style diagonal grid: each node couples to up to four
    diagonal neighbours of the next row."""
    edges: List[Tuple[int, int]] = []
    for r in range(rows - 1):
        for c in range(cols):
            q = r * cols + c
            below = (r + 1) * cols + c
            edges.append((q, below))
            if c + 1 < cols and r % 2 == 0:
                edges.append((q, below + 1))
            elif c > 0 and r % 2 == 1:
                edges.append((q, below - 1))
    return CouplingMap(edges, num_qubits=rows * cols, name=f"sycamore-{rows}x{cols}")


def ion_trap(num_qubits: int) -> CouplingMap:
    """Trapped-ion chain with all-to-all connectivity (paper Section 7
    names ion traps as an extension target; routing becomes trivial but
    gate counts still matter)."""
    cmap = full(num_qubits)
    cmap.name = f"ion-trap-{num_qubits}"
    return cmap


def melbourne() -> CouplingMap:
    """The ibmq_16_melbourne ladder (15 usable qubits).

    Row A: 0-1-2-3-4-5-6; row B: 14-13-12-11-10-9-8, with 7 hanging off 8
    and rungs between the rows.
    """
    edges = [
        (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6),
        (14, 13), (13, 12), (12, 11), (11, 10), (10, 9), (9, 8), (8, 7),
        (0, 14), (1, 13), (2, 12), (3, 11), (4, 10), (5, 9), (6, 8),
    ]
    return CouplingMap(edges, num_qubits=15, name="melbourne-15")
