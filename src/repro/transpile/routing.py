"""SABRE-style swap routing.

Maps a logical circuit onto a coupling-constrained device by inserting SWAP
gates.  This is the generic qubit-mapping stage of the baseline compilers
(the paper routes TK/naive output through "Qiskit_L3", whose router is
SABRE); Paulihedral's own SC pass avoids most of this cost by construction.

The heuristic follows Li, Ding & Xie (ASPLOS 2019): a front layer of blocked
two-qubit gates, a lookahead ("extended") set, per-qubit decay to spread
swaps, and the distance-sum score.

Bookkeeping reads the circuit's columnar tape: the per-wire sequences and
each gate's position on its wires are taken once from the tape links, the
front layer is maintained incrementally as gates are emitted (instead of
re-scanning every wire per step), and swap candidates are scored against
a flat logical-to-physical array with no per-candidate layout copies.  The
decision sequence — and therefore the routed circuit — is identical to the
seed implementation kept in :mod:`repro.transpile.reference`, which the
tests assert gate-for-gate.
"""

from __future__ import annotations

import math

from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from ..circuit import QuantumCircuit
from ..circuit.gates import OP
from ..circuit.tape import NO_SLOT, GateTape
from .coupling import CouplingMap
from .layout import Layout, dense_initial_layout

__all__ = [
    "route",
    "RoutingResult",
    "validate_routed",
    "reliability_cost_matrix",
]

_EXTENDED_SIZE = 20
_EXTENDED_WEIGHT = 0.5
_DECAY_STEP = 0.001
_DECAY_RESET_INTERVAL = 5

_OP_SWAP = OP["swap"]


def reliability_cost_matrix(
    coupling: CouplingMap,
    edge_error: Optional[Dict[Tuple[int, int], float]],
) -> Optional[List[List[float]]]:
    """All-pairs reliability cost, or ``None`` when there is no signal.

    Each edge is weighted by the cost of one SWAP across it,
    ``3 * -log(1 - e)`` (a SWAP is 3 CNOTs), so the Dijkstra path sum
    between two qubits is ``-log`` of the probability that a swap chain
    along the most reliable path succeeds — minimizing the sum maximizes
    the product of success probabilities (the qiskit-terra
    ``NoiseAdaptiveLayout`` swap-reliability idiom, paper Section 5.2).

    Returns ``None`` for an empty/absent ``edge_error`` or a *uniform* one
    (every edge the same rate): a uniform model cannot prefer one
    equal-hop path over another, and falling back to the exact integer
    hop matrix keeps the router gate-identical to the distance-only
    reference in that case.  Coupled edges missing from ``edge_error``
    pessimistically get the worst calibrated rate.
    """
    if not edge_error:
        return None
    rates = {round(r, 12) for r in edge_error.values()}
    if len(rates) <= 1:
        return None
    worst = max(edge_error.values())

    def swap_cost(a: int, b: int) -> float:
        edge = (a, b) if a < b else (b, a)
        rate = edge_error.get(edge, worst)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"edge {edge} error rate {rate!r} outside [0, 1)")
        return 3.0 * -math.log(1.0 - rate)

    n = coupling.num_qubits
    inf = float("inf")
    cost = [[inf] * n for _ in range(n)]
    lengths = nx.all_pairs_dijkstra_path_length(
        coupling.graph, weight=lambda u, v, _attrs: swap_cost(u, v)
    )
    for src, dists in lengths:
        row = cost[src]
        for dst, d in dists.items():
            row[dst] = d
    return cost


class RoutingResult:
    """Output of :func:`route`: the physical circuit plus layout history."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        initial_layout: Layout,
        final_layout: Layout,
        swap_count: int,
    ):
        self.circuit = circuit
        self.initial_layout = initial_layout
        self.final_layout = final_layout
        self.swap_count = swap_count


#: Weight of the (normalized) reliability term in the hybrid swap-scoring
#: matrix: hop distance stays the primary objective, reliability breaks
#: near-ties toward low-error corridors.  Larger blends let the router
#: chase cheap edges instead of making progress, which bloats swap counts
#: and loses more fidelity than the better edges recover.
_RELIABILITY_BLEND = 0.05


def _hybrid_cost_matrix(
    coupling: CouplingMap, rel: List[List[float]]
) -> List[List[float]]:
    """Hop distance plus a small normalized reliability term.

    The reliability matrix is rescaled so one mean-cost hop contributes
    ``_RELIABILITY_BLEND``: a full hop of extra distance always outweighs
    any realistic reliability spread, so the router keeps SABRE's progress
    behaviour and only *prefers* the reliable path among comparable ones.
    """
    hop = coupling.distance_matrix()
    edge_costs = [rel[a][b] for a, b in coupling.edges]
    mean = sum(edge_costs) / len(edge_costs)
    scale = _RELIABILITY_BLEND / mean
    n = coupling.num_qubits
    return [
        [hop[a][b] + scale * rel[a][b] for b in range(n)]
        for a in range(n)
    ]


def _two_qubit_cost(
    circuit: QuantumCircuit,
    edge_error: Dict[Tuple[int, int], float],
) -> float:
    """``-log`` of the routed circuit's two-qubit success product.

    The portfolio selection metric: computable from ``edge_error`` alone
    (no full noise model needed inside the router), dominated by exactly
    the terms routing controls — which coupled edges carry the CNOTs and
    how many SWAPs were spent.
    """
    worst = max(edge_error.values())
    total = 0.0
    tape = circuit.tape
    for slot in tape.iter_slots():
        q1 = tape.q1[slot]
        if q1 == NO_SLOT:
            continue
        q0 = tape.q0[slot]
        edge = (q0, q1) if q0 < q1 else (q1, q0)
        rate = edge_error.get(edge, worst)
        if rate >= 1.0:
            return float("inf")
        cost = -math.log(1.0 - rate)
        total += 3.0 * cost if tape.op[slot] == _OP_SWAP else cost
    return total


def route(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Optional[Layout] = None,
    edge_error: Optional[Dict[Tuple[int, int], float]] = None,
) -> RoutingResult:
    """Insert SWAPs so every two-qubit gate touches a coupled pair.

    The returned circuit acts on *physical* qubits (``coupling.num_qubits``
    wide).

    With ``edge_error`` (per-edge two-qubit error rates), the router runs
    a small deterministic portfolio — plain and reliability-seeded dense
    layouts, each scored by plain hop distance and by the hybrid
    hop+reliability matrix — and keeps the variant whose routed circuit
    has the lowest two-qubit failure cost.  The distance-only baseline is
    always in the portfolio, so the noise-aware result is never less
    reliable than it.  When ``edge_error`` is absent (or uniform, i.e.
    carries no signal) the decision sequence is bit-identical to the
    historical distance-only router, which the reference tests assert
    gate-for-gate.
    """
    if not coupling.is_fully_connected:
        raise ValueError(
            f"coupling map {coupling.name or '<anonymous>'} is disconnected; "
            f"routing cannot bridge isolated components"
        )
    rel = reliability_cost_matrix(coupling, edge_error)
    if rel is None:
        if initial_layout is None:
            initial_layout = dense_initial_layout(coupling, circuit.num_qubits)
        return _route_with(circuit, coupling, initial_layout, None)

    hybrid = _hybrid_cost_matrix(coupling, rel)
    if initial_layout is not None:
        layouts = [initial_layout]
    else:
        plain = dense_initial_layout(coupling, circuit.num_qubits)
        seeded = dense_initial_layout(
            coupling, circuit.num_qubits, edge_error=edge_error
        )
        layouts = [plain] if seeded == plain else [plain, seeded]
    best: Optional[RoutingResult] = None
    best_cost = float("inf")
    # Baseline (first layout, hop distance) is tried first; strict `<`
    # keeps it on ties, so the portfolio can only improve on it.
    for layout in layouts:
        for dist in (None, hybrid):
            result = _route_with(circuit, coupling, layout, dist)
            cost = _two_qubit_cost(result.circuit, edge_error)
            if cost < best_cost:
                best = result
                best_cost = cost
    assert best is not None
    return best


def _route_with(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Layout,
    cost: Optional[List[List[float]]],
) -> RoutingResult:
    """One SABRE pass with a fixed layout and distance matrix (``cost``
    ``None`` means the exact integer hop matrix — the seed-identical
    path)."""
    layout = initial_layout.copy()
    # The routed circuit is accumulated as raw columns and adopted as a
    # tape in one shot at the end (per-gate appends would dominate).
    out_op: List[int] = []
    out_q0: List[int] = []
    out_q1: List[int] = []
    out_param: List[float] = []

    # Dense row view of the logical circuit, straight off the tape.
    tape = circuit.tape
    ops: List[int] = []
    gq0: List[int] = []
    gq1: List[int] = []
    gparam: List[float] = []
    for slot in tape.iter_slots():
        op, q0, q1, param = tape.row(slot)
        ops.append(op)
        gq0.append(q0)
        gq1.append(q1)
        gparam.append(param)
    n = len(ops)
    num_logical = circuit.num_qubits

    # Per-wire sequences plus each gate's position on its wires, derived
    # once (the tape keeps gates wire-linked, so this is a single walk).
    per_qubit: List[List[int]] = [[] for _ in range(num_logical)]
    pos0 = [0] * n
    pos1 = [0] * n
    for i in range(n):
        seq = per_qubit[gq0[i]]
        pos0[i] = len(seq)
        seq.append(i)
        q1 = gq1[i]
        if q1 != NO_SLOT:
            seq = per_qubit[q1]
            pos1[i] = len(seq)
            seq.append(i)

    cursor = [0] * num_logical
    l2p = [layout.physical(q) for q in range(num_logical)]
    p2l = [-1] * coupling.num_qubits
    for logical, physical in enumerate(l2p):
        p2l[physical] = logical
    dist = cost if cost is not None else coupling.distance_matrix()
    is_connected = coupling.is_connected
    neighbor_list = [coupling.neighbors(p) for p in range(coupling.num_qubits)]
    decay = [1.0] * coupling.num_qubits
    steps_since_reset = 0
    swap_count = 0

    # Scratch buffers for swap scoring, reset lazily via generation stamps
    # so no per-decision dict/set allocation is needed.
    touched: List[List[Tuple[int, int, int, int]]] = [[] for _ in range(coupling.num_qubits)]
    touched_stamp = [0] * coupling.num_qubits
    decision_stamp = 0

    def is_ready(idx: int) -> bool:
        if per_qubit[gq0[idx]][cursor[gq0[idx]]] != idx:
            return False
        q1 = gq1[idx]
        return q1 == NO_SLOT or per_qubit[q1][cursor[q1]] == idx

    # The ready ("front") set, maintained incrementally.  Ready gates hold
    # every wire cursor they touch, so sorting by the minimum wire
    # reproduces the seed front_layer()'s qubit-scan order exactly.
    ready: Set[int] = set()
    for q in range(num_logical):
        if per_qubit[q]:
            idx = per_qubit[q][0]
            if is_ready(idx):
                ready.add(idx)

    def front_key(idx: int) -> int:
        q1 = gq1[idx]
        q0 = gq0[idx]
        return q0 if q1 == NO_SLOT or q0 < q1 else q1

    # The extended set depends only on the front layer (not the layout),
    # so it stays valid across consecutive swap decisions; emitting any
    # gate changes the front and invalidates it.
    ext_cache: Optional[List[int]] = None

    def emit(idx: int) -> None:
        nonlocal ext_cache
        ext_cache = None
        ready.discard(idx)
        q0 = gq0[idx]
        q1 = gq1[idx]
        out_op.append(ops[idx])
        out_q0.append(l2p[q0])
        out_q1.append(NO_SLOT if q1 == NO_SLOT else l2p[q1])
        out_param.append(gparam[idx])
        cursor[q0] += 1
        if q1 != NO_SLOT:
            cursor[q1] += 1
        seq = per_qubit[q0]
        c = cursor[q0]
        if c < len(seq):
            nxt = seq[c]
            other = gq1[nxt] if gq0[nxt] == q0 else gq0[nxt]
            if other == NO_SLOT or per_qubit[other][cursor[other]] == nxt:
                ready.add(nxt)
        if q1 != NO_SLOT:
            seq = per_qubit[q1]
            c = cursor[q1]
            if c < len(seq):
                nxt = seq[c]
                other = gq1[nxt] if gq0[nxt] == q1 else gq0[nxt]
                if other == NO_SLOT or per_qubit[other][cursor[other]] == nxt:
                    ready.add(nxt)

    ext_seen = bytearray(n)

    def extended_set(front: List[int]) -> List[int]:
        # Successor two-qubit gates of the front layer, breadth-first.
        result: List[int] = []
        frontier = list(front)
        for idx in frontier:
            ext_seen[idx] = 1
        k = 0
        while k < len(frontier) and len(result) < _EXTENDED_SIZE:
            idx = frontier[k]
            k += 1
            q = gq0[idx]
            seq = per_qubit[q]
            nxt = pos0[idx] + 1
            if nxt < len(seq):
                succ = seq[nxt]
                if not ext_seen[succ]:
                    ext_seen[succ] = 1
                    if gq1[succ] != NO_SLOT:
                        result.append(succ)
                    frontier.append(succ)
            q = gq1[idx]
            if q != NO_SLOT:
                seq = per_qubit[q]
                nxt = pos1[idx] + 1
                if nxt < len(seq):
                    succ = seq[nxt]
                    if not ext_seen[succ]:
                        ext_seen[succ] = 1
                        if gq1[succ] != NO_SLOT:
                            result.append(succ)
                        frontier.append(succ)
        for idx in frontier:
            ext_seen[idx] = 0
        return result

    while ready:
        front = sorted(ready, key=front_key)
        progressed = False
        for idx in front:
            q1 = gq1[idx]
            if q1 == NO_SLOT or is_connected(l2p[gq0[idx]], l2p[q1]):
                emit(idx)
                progressed = True
        if progressed:
            continue

        # All front gates are blocked two-qubit gates: pick the best SWAP.
        blocked_physical: Set[int] = set()
        front_pairs: List[Tuple[int, int]] = []
        for idx in front:
            pa, pb = l2p[gq0[idx]], l2p[gq1[idx]]
            front_pairs.append((pa, pb))
            blocked_physical.add(pa)
            blocked_physical.add(pb)
        candidates: Set[Tuple[int, int]] = set()
        for p in blocked_physical:
            for nbr in neighbor_list[p]:
                candidates.add((p, nbr) if p < nbr else (nbr, p))
        if ext_cache is None:
            ext_cache = extended_set(front)
        ext_pairs = [(l2p[gq0[i]], l2p[gq1[i]]) for i in ext_cache]
        num_ext = len(ext_pairs)

        # Delta scoring: only pairs touching a candidate's two physical
        # qubits change distance, so each candidate adjusts the base sums
        # instead of re-walking every pair.  On the hop-distance path all
        # sums stay integers until the final float expression, which
        # matches the seed's full-recompute arithmetic bit for bit (with
        # a reliability cost matrix the sums are floats; there is no seed
        # oracle for that path, only determinism).
        decision_stamp += 1
        base_front = 0
        base_ext = 0
        for group, pairs in ((0, front_pairs), (1, ext_pairs)):
            for a, b in pairs:
                d = dist[a][b]
                if group == 0:
                    base_front += d
                else:
                    base_ext += d
                entry = (group, a, b, d)
                if touched_stamp[a] != decision_stamp:
                    touched_stamp[a] = decision_stamp
                    touched[a] = [entry]
                else:
                    touched[a].append(entry)
                if touched_stamp[b] != decision_stamp:
                    touched_stamp[b] = decision_stamp
                    touched[b] = [entry]
                else:
                    touched[b].append(entry)
        best_swap = None
        best_score = None
        for swap in sorted(candidates):
            p, r = swap
            delta_front = 0
            delta_ext = 0
            if touched_stamp[p] == decision_stamp:
                for group, a, b, old in touched[p]:
                    na = r if a == p else (p if a == r else a)
                    nb = r if b == p else (p if b == r else b)
                    diff = dist[na][nb] - old
                    if group == 0:
                        delta_front += diff
                    else:
                        delta_ext += diff
            if touched_stamp[r] == decision_stamp:
                for group, a, b, old in touched[r]:
                    if a == p or b == p:
                        continue  # counted from p's bucket already
                    na = p if a == r else a
                    nb = p if b == r else b
                    diff = dist[na][nb] - old
                    if group == 0:
                        delta_front += diff
                    else:
                        delta_ext += diff
            dp, dr = decay[p], decay[r]
            total = float(base_front + delta_front) * (dp if dp >= dr else dr)
            if num_ext:
                total += _EXTENDED_WEIGHT * float(base_ext + delta_ext) / num_ext
            if best_score is None or total < best_score:
                best_score = total
                best_swap = swap
        assert best_swap is not None, "no swap candidates on a connected device"
        p, r = best_swap
        out_op.append(_OP_SWAP)
        out_q0.append(p)
        out_q1.append(r)
        out_param.append(0.0)
        layout.swap_physical(p, r)
        lp, lr = p2l[p], p2l[r]
        p2l[p], p2l[r] = lr, lp
        if lr != -1:
            l2p[lr] = p
        if lp != -1:
            l2p[lp] = r
        swap_count += 1
        decay[p] += _DECAY_STEP
        decay[r] += _DECAY_STEP
        steps_since_reset += 1
        if steps_since_reset >= _DECAY_RESET_INTERVAL:
            decay = [1.0] * coupling.num_qubits
            steps_since_reset = 0

    out = QuantumCircuit.from_tape(
        GateTape.from_columns(coupling.num_qubits, out_op, out_q0, out_q1, out_param),
        name=circuit.name,
    )
    return RoutingResult(out, initial_layout, layout, swap_count)


def validate_routed(circuit: QuantumCircuit, coupling: CouplingMap) -> None:
    """Raise if any two-qubit gate acts on a non-coupled pair."""
    tape = circuit.tape
    for slot in tape.iter_slots():
        q1 = tape.q1[slot]
        if q1 != NO_SLOT and not coupling.is_connected(tape.q0[slot], q1):
            raise ValueError(
                f"gate {tape.gate_at(slot)!r} acts on non-adjacent qubits"
            )
