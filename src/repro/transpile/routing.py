"""SABRE-style swap routing.

Maps a logical circuit onto a coupling-constrained device by inserting SWAP
gates.  This is the generic qubit-mapping stage of the baseline compilers
(the paper routes TK/naive output through "Qiskit_L3", whose router is
SABRE); Paulihedral's own SC pass avoids most of this cost by construction.

The heuristic follows Li, Ding & Xie (ASPLOS 2019): a front layer of blocked
two-qubit gates, a lookahead ("extended") set, per-qubit decay to spread
swaps, and the distance-sum score.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit import Gate, QuantumCircuit
from .coupling import CouplingMap
from .layout import Layout, dense_initial_layout

__all__ = ["route", "RoutingResult", "validate_routed"]

_EXTENDED_SIZE = 20
_EXTENDED_WEIGHT = 0.5
_DECAY_STEP = 0.001
_DECAY_RESET_INTERVAL = 5


class RoutingResult:
    """Output of :func:`route`: the physical circuit plus layout history."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        initial_layout: Layout,
        final_layout: Layout,
        swap_count: int,
    ):
        self.circuit = circuit
        self.initial_layout = initial_layout
        self.final_layout = final_layout
        self.swap_count = swap_count


def route(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Optional[Layout] = None,
) -> RoutingResult:
    """Insert SWAPs so every two-qubit gate touches a coupled pair.

    The returned circuit acts on *physical* qubits (``coupling.num_qubits``
    wide).
    """
    if initial_layout is None:
        initial_layout = dense_initial_layout(coupling, circuit.num_qubits)
    layout = initial_layout.copy()
    out = QuantumCircuit(coupling.num_qubits, name=circuit.name)
    gates = list(circuit.gates)
    n = len(gates)

    # Dependency structure: per logical qubit, the ordered gate indices.
    per_qubit: Dict[int, List[int]] = {q: [] for q in range(circuit.num_qubits)}
    for idx, gate in enumerate(gates):
        for q in gate.qubits:
            per_qubit[q].append(idx)
    cursor = {q: 0 for q in per_qubit}
    emitted = [False] * n
    decay = [1.0] * coupling.num_qubits
    steps_since_reset = 0
    swap_count = 0

    def ready(idx: int) -> bool:
        return all(
            per_qubit[q][cursor[q]] == idx for q in gates[idx].qubits
        )

    def advance(idx: int) -> None:
        for q in gates[idx].qubits:
            cursor[q] += 1

    def front_layer() -> List[int]:
        front = []
        for q, seq in per_qubit.items():
            if cursor[q] < len(seq):
                idx = seq[cursor[q]]
                if not emitted[idx] and ready(idx) and idx not in front:
                    front.append(idx)
        return front

    def emit(idx: int) -> None:
        gate = gates[idx]
        physical = tuple(layout.physical(q) for q in gate.qubits)
        out.append(Gate(gate.name, physical, gate.params))
        emitted[idx] = True
        advance(idx)

    def executable(idx: int) -> bool:
        gate = gates[idx]
        if gate.num_qubits == 1:
            return True
        p0, p1 = (layout.physical(q) for q in gate.qubits)
        return coupling.is_connected(p0, p1)

    def extended_set(front: Sequence[int]) -> List[int]:
        # Successor two-qubit gates of the front layer, breadth-first.
        result: List[int] = []
        local_cursor = dict(cursor)
        frontier = list(front)
        seen: Set[int] = set(front)
        while frontier and len(result) < _EXTENDED_SIZE:
            idx = frontier.pop(0)
            for q in gates[idx].qubits:
                pos = local_cursor[q]
                seq = per_qubit[q]
                # step past idx on this wire
                while pos < len(seq) and seq[pos] != idx:
                    pos += 1
                nxt = pos + 1
                if nxt < len(seq):
                    succ = seq[nxt]
                    if succ not in seen:
                        seen.add(succ)
                        if gates[succ].num_qubits == 2:
                            result.append(succ)
                        frontier.append(succ)
        return result

    def score(front: Sequence[int], ext: Sequence[int], trial: Layout, swap: Tuple[int, int]) -> float:
        total = 0.0
        for idx in front:
            q0, q1 = gates[idx].qubits
            total += coupling.distance(trial.physical(q0), trial.physical(q1))
        total *= max(decay[swap[0]], decay[swap[1]])
        if ext:
            ext_sum = 0.0
            for idx in ext:
                q0, q1 = gates[idx].qubits
                ext_sum += coupling.distance(trial.physical(q0), trial.physical(q1))
            total += _EXTENDED_WEIGHT * ext_sum / len(ext)
        return total

    while True:
        front = front_layer()
        if not front:
            break
        progressed = False
        for idx in list(front):
            if executable(idx):
                emit(idx)
                progressed = True
        if progressed:
            continue

        # All front gates are blocked two-qubit gates: pick the best SWAP.
        front = front_layer()
        blocked_physical: Set[int] = set()
        for idx in front:
            for q in gates[idx].qubits:
                blocked_physical.add(layout.physical(q))
        candidates: Set[Tuple[int, int]] = set()
        for p in blocked_physical:
            for nbr in coupling.neighbors(p):
                candidates.add(tuple(sorted((p, nbr))))
        ext = extended_set(front)
        best_swap = None
        best_score = None
        for swap in sorted(candidates):
            trial = layout.copy()
            trial.swap_physical(*swap)
            s = score(front, ext, trial, swap)
            if best_score is None or s < best_score:
                best_score = s
                best_swap = swap
        assert best_swap is not None, "no swap candidates on a connected device"
        out.append(Gate("swap", best_swap))
        layout.swap_physical(*best_swap)
        swap_count += 1
        decay[best_swap[0]] += _DECAY_STEP
        decay[best_swap[1]] += _DECAY_STEP
        steps_since_reset += 1
        if steps_since_reset >= _DECAY_RESET_INTERVAL:
            decay = [1.0] * coupling.num_qubits
            steps_since_reset = 0

    return RoutingResult(out, initial_layout, layout, swap_count)


def validate_routed(circuit: QuantumCircuit, coupling: CouplingMap) -> None:
    """Raise if any two-qubit gate acts on a non-coupled pair."""
    for gate in circuit:
        if gate.num_qubits == 2:
            a, b = gate.qubits
            if not coupling.is_connected(a, b):
                raise ValueError(f"gate {gate!r} acts on non-adjacent qubits")
