"""Device registry: named coupling-map + calibration bundles.

A :class:`DeviceSpec` pairs a :class:`~repro.transpile.CouplingMap` with a
:class:`~repro.noise.model.NoiseModel`, which is what the noise-aware
compile path actually targets: routing wants the per-edge error rates, the
cache wants the quantized calibration identity, and reporting wants ESP
against the same model the router optimized for.

Fixed registry entries (``get_device("melbourne-15")`` etc.) carry
deterministic calibrations seeded from the device name, so two sessions —
or two cache clients — asking for the same name agree byte-for-byte on the
rates.  Parametric families are recognized by pattern: ``ion-trap-<n>``,
``grid-<r>x<c>``, ``ring-<n>``.  Arbitrary real calibrations enter through
:func:`DeviceSpec.from_snapshot` / :func:`load_device` (a JSON snapshot as
produced by :meth:`DeviceSpec.to_snapshot`), which the CLI exposes as
``--device path/to/snapshot.json``.

The :mod:`~repro.noise.model` import is deferred into the builders so that
importing :mod:`repro.transpile` stays light (the noise package pulls in
the compiler core).
"""

from __future__ import annotations

import json
import re
import zlib
from typing import TYPE_CHECKING, Callable, Dict, List, Tuple

from . import coupling as _topologies
from .coupling import CouplingMap

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..noise.model import NoiseModel

__all__ = ["DeviceSpec", "device_names", "get_device", "load_device"]


class DeviceSpec:
    """A named compile target: topology plus calibration.

    The noise model must calibrate every qubit and every coupled edge of
    the topology — the router and ``esp()`` run strict against routed
    circuits, so a hole in the calibration is a constructor error here,
    not a mid-route crash.
    """

    def __init__(self, name: str, coupling: CouplingMap, noise_model: "NoiseModel"):
        for q in range(coupling.num_qubits):
            if q not in noise_model.single_qubit_error:
                raise ValueError(
                    f"device {name!r}: qubit {q} has no single-qubit calibration"
                )
        for edge in coupling.edges:
            if edge not in noise_model.two_qubit_error:
                raise ValueError(
                    f"device {name!r}: edge {edge} has no two-qubit calibration"
                )
        self.name = name
        self.coupling = coupling
        self.noise_model = noise_model

    # ------------------------------------------------------------------
    def edge_error(self) -> Dict[Tuple[int, int], float]:
        """Per-edge error map for the routing/synthesis passes."""
        return self.noise_model.edge_error_map()

    def to_snapshot(self) -> Dict:
        """JSON-able snapshot: topology + exact calibration rates."""
        return {
            "name": self.name,
            "num_qubits": self.coupling.num_qubits,
            "edges": [[a, b] for a, b in sorted(self.coupling.edges)],
            "calibration": self.noise_model.to_calibration(),
        }

    @classmethod
    def from_snapshot(cls, payload: Dict) -> "DeviceSpec":
        """Rebuild a device from :meth:`to_snapshot` output."""
        from ..noise.model import NoiseModel

        name = str(payload["name"])
        cmap = CouplingMap(
            [(int(a), int(b)) for a, b in payload["edges"]],
            num_qubits=int(payload["num_qubits"]),
            name=name,
        )
        return cls(name, cmap, NoiseModel.from_calibration(payload["calibration"]))

    def __repr__(self) -> str:
        return (
            f"DeviceSpec({self.name!r}, qubits={self.coupling.num_qubits}, "
            f"edges={len(self.coupling.edges)})"
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def _seed(name: str) -> int:
    """Deterministic per-device calibration seed (stable across runs)."""
    return zlib.crc32(name.encode("utf-8")) & 0xFFFF


def _calibrated(name: str, cmap: CouplingMap) -> DeviceSpec:
    from ..noise.model import NoiseModel

    cmap.name = name
    return DeviceSpec(name, cmap, NoiseModel.calibrated(cmap, seed=_seed(name)))


_FIXED: Dict[str, Callable[[], CouplingMap]] = {
    "melbourne-15": _topologies.melbourne,
    "falcon-27": _topologies.falcon_27,
    "manhattan-65": _topologies.manhattan_65,
    "sycamore-30": _topologies.sycamore_like,
}

_FAMILIES: List[Tuple[re.Pattern, Callable[..., CouplingMap]]] = [
    (re.compile(r"^ion-trap-(\d+)$"), _topologies.ion_trap),
    (re.compile(r"^grid-(\d+)x(\d+)$"), _topologies.grid),
    (re.compile(r"^ring-(\d+)$"), _topologies.ring),
]


def device_names() -> Tuple[str, ...]:
    """The fixed registry names (families are pattern-matched on top:
    ``ion-trap-<n>``, ``grid-<r>x<c>``, ``ring-<n>``)."""
    return tuple(sorted(_FIXED))


def get_device(name: str) -> DeviceSpec:
    """Resolve a registry name (or family pattern) to a calibrated device."""
    builder = _FIXED.get(name)
    if builder is not None:
        return _calibrated(name, builder())
    for pattern, family in _FAMILIES:
        match = pattern.match(name)
        if match:
            return _calibrated(name, family(*(int(g) for g in match.groups())))
    raise ValueError(
        f"unknown device {name!r}; registry has {', '.join(device_names())} "
        f"plus the ion-trap-<n>, grid-<r>x<c>, ring-<n> families"
    )


def load_device(path: str) -> DeviceSpec:
    """Load a :meth:`DeviceSpec.to_snapshot` JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return DeviceSpec.from_snapshot(json.load(handle))
