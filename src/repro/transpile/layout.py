"""Qubit layout: logical-to-physical maps and dense initial placement.

Algorithm 3 (line 1) starts by mapping all logical qubits "to the most
connected subgraph in the device coupling map"; :func:`dense_initial_layout`
implements that with a greedy densest-subgraph expansion, which is also what
the generic transpiler uses for the baselines.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .coupling import CouplingMap

__all__ = ["Layout", "dense_initial_layout", "trivial_layout"]


class Layout:
    """A bijection between logical and physical qubits.

    Only the logical qubits of the program are mapped; unmapped physical
    qubits are free real estate for routing.
    """

    def __init__(self, logical_to_physical: Dict[int, int]):
        self._l2p = dict(logical_to_physical)
        self._p2l = {p: l for l, p in self._l2p.items()}
        if len(self._p2l) != len(self._l2p):
            raise ValueError("layout is not injective")

    @classmethod
    def from_physical_list(cls, physical: Iterable[int]) -> "Layout":
        """Logical qubit ``i`` goes to ``physical[i]``."""
        return cls({i: p for i, p in enumerate(physical)})

    def physical(self, logical: int) -> int:
        return self._l2p[logical]

    def logical(self, physical: int) -> Optional[int]:
        return self._p2l.get(physical)

    @property
    def num_logical(self) -> int:
        return len(self._l2p)

    def physical_qubits(self) -> Tuple[int, ...]:
        return tuple(self._l2p.values())

    def swap_physical(self, p1: int, p2: int) -> None:
        """Update the layout after a SWAP on physical qubits ``p1``/``p2``."""
        l1 = self._p2l.pop(p1, None)
        l2 = self._p2l.pop(p2, None)
        if l2 is not None:
            self._p2l[p1] = l2
            self._l2p[l2] = p1
        if l1 is not None:
            self._p2l[p2] = l1
            self._l2p[l1] = p2

    def copy(self) -> "Layout":
        return Layout(self._l2p)

    def as_dict(self) -> Dict[int, int]:
        return dict(self._l2p)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self._l2p == other._l2p

    def __repr__(self) -> str:
        items = ", ".join(f"q{l}->p{p}" for l, p in sorted(self._l2p.items()))
        return f"Layout({items})"


def dense_initial_layout(
    coupling: CouplingMap,
    num_logical: int,
    edge_error: Optional[Dict[Tuple[int, int], float]] = None,
) -> Layout:
    """Greedy densest-connected-subgraph placement.

    Starts from the highest-degree physical qubit and repeatedly adds the
    neighbouring qubit with the most edges into the chosen set, producing a
    connected, locally dense region of ``num_logical`` physical qubits.

    With ``edge_error`` (per-edge two-qubit error rates), density is scored
    by *reliability-weighted* degree instead of edge count: every edge
    contributes its success probability ``1 - e``, so the chosen region is
    both dense and low-error (paper Section 5.2's calibration-aware
    placement).  Uncalibrated edges pessimistically contribute the worst
    known rate.  Without ``edge_error`` the decision sequence is the
    historical one, bit for bit.
    """
    if num_logical > coupling.num_qubits:
        raise ValueError(
            f"program needs {num_logical} qubits but device has {coupling.num_qubits}"
        )

    if edge_error:
        worst = max(edge_error.values())

        def reliability(a: int, b: int) -> float:
            edge = (a, b) if a < b else (b, a)
            return 1.0 - edge_error.get(edge, worst)

        def incident_weight(q: int) -> float:
            return sum(reliability(q, nbr) for nbr in coupling.neighbors(q))

        start = max(
            range(coupling.num_qubits),
            key=lambda q: (incident_weight(q), coupling.degree(q), -q),
        )
    else:
        start = max(range(coupling.num_qubits), key=coupling.degree)
    chosen = [start]
    chosen_set = {start}
    while len(chosen) < num_logical:
        frontier = {
            nbr
            for q in chosen
            for nbr in coupling.neighbors(q)
            if nbr not in chosen_set
        }
        if not frontier:  # disconnected device; jump to the densest remainder
            remaining = [q for q in range(coupling.num_qubits) if q not in chosen_set]
            frontier = set(remaining[:1])
        if edge_error:
            best = max(
                frontier,
                key=lambda q: (
                    sum(reliability(q, nbr)
                        for nbr in coupling.neighbors(q) if nbr in chosen_set),
                    incident_weight(q),
                    -q,
                ),
            )
        else:
            best = max(
                frontier,
                key=lambda q: (
                    sum(1 for nbr in coupling.neighbors(q) if nbr in chosen_set),
                    coupling.degree(q),
                    -q,
                ),
            )
        chosen.append(best)
        chosen_set.add(best)
    return Layout({i: p for i, p in enumerate(sorted(chosen))})


def trivial_layout(num_logical: int) -> Layout:
    """Identity layout (logical i -> physical i)."""
    return Layout({i: i for i in range(num_logical)})
