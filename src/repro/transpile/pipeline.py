"""Generic compilation pipeline (the repository's "Qiskit_L3" stand-in).

The paper feeds every frontend's output (Paulihedral, TK, naive) through a
generic industry compiler.  :func:`transpile` reproduces that stage:

* level 0 — no optimization, routing only (if a coupling map is given);
* level 1 — adjacent-pair cancellation + rotation merging;
* level 2 — level 1 plus commutative CNOT cancellation;
* level 3 — all rules including SWAP/CNOT fusion, before *and* after
  routing.

Each level runs its rule subset to a joint fixpoint in a single pass of
the worklist engine (see :mod:`repro.transpile.peephole`).  Routing uses
the SABRE-style router with a dense initial layout, mirroring Qiskit's
default at high optimization levels.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..circuit import QuantumCircuit
from ..static.contracts import PipelineChecker, rules_for_level
from ..static.invariants import debug_check
from .coupling import CouplingMap
from .layout import Layout
from .peephole import run_rules
from .routing import route, validate_routed

__all__ = ["transpile", "contract_sequence"]


def contract_sequence(
    optimization_level: int, routed: bool, noise_aware: bool = False
) -> list:
    """The contract-name sequence :func:`transpile` executes for a given
    level/target, for the pipeline checker."""
    rules = rules_for_level(optimization_level)
    if not routed:
        return rules
    router = "route_sabre_noise" if noise_aware else "route_sabre"
    return [*rules, router, *rules, "validate_routed"]


def _self_check() -> None:
    """Validate every sequence this driver can run (levels 0-3, routed or
    all-to-all, distance-only or noise-aware) at import time: a rule
    reordering that breaks composition fails here, before any circuit is
    touched."""
    checker = PipelineChecker()
    for level in range(4):
        for routed in (False, True):
            for noise_aware in ((False, True) if routed else (False,)):
                target = "routed" if routed else "alltoall"
                if noise_aware:
                    target = "noise-" + target
                checker.check(
                    contract_sequence(level, routed, noise_aware),
                    initial=frozenset({"synthesized"}),
                    goal=frozenset(
                        {"synthesized", "routed", "coupling_respected"}
                        if routed else {"synthesized"}
                    ),
                    name=f"transpile-{target}-opt{level}",
                )


_self_check()


def _optimize_at_level(circuit: QuantumCircuit, level: int) -> QuantumCircuit:
    if level <= 0:
        return circuit
    out, _ = run_rules(
        circuit,
        cancel=True,
        merge=True,
        commute=level >= 2,
        fuse=level >= 3,
    )
    return out


def transpile(
    circuit: QuantumCircuit,
    coupling: Optional[CouplingMap] = None,
    optimization_level: int = 3,
    initial_layout: Optional[Layout] = None,
    edge_error: Optional[Dict[Tuple[int, int], float]] = None,
) -> QuantumCircuit:
    """Generic compile: optimize, route to hardware (optional), re-optimize.

    When ``coupling`` is ``None`` the target is the all-to-all FT backend and
    only gate-level optimization runs.  ``edge_error`` (per-edge two-qubit
    error rates) switches routing to the reliability-weighted scorer; see
    :func:`repro.transpile.route`.
    """
    out = _optimize_at_level(circuit, optimization_level)
    debug_check("transpile: pre-routing optimize", tape=out.tape)
    if coupling is not None:
        result = route(
            out, coupling, initial_layout=initial_layout, edge_error=edge_error
        )
        out = result.circuit
        debug_check("transpile: route", tape=out.tape, coupling=coupling)
        out = _optimize_at_level(out, optimization_level)
        validate_routed(out, coupling)
        debug_check("transpile: post-routing optimize", tape=out.tape,
                    coupling=coupling)
    return out
