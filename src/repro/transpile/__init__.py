"""Generic transpilation substrate: coupling maps, layout, routing, peephole."""

from .coupling import (
    CouplingMap,
    falcon_27,
    full,
    ion_trap,
    sycamore_like,
    grid,
    heavy_hex,
    linear,
    manhattan_65,
    melbourne,
    ring,
)
from .layout import Layout, dense_initial_layout, trivial_layout
from .peephole import (
    fuse_swap_cx,
    cancel_adjacent_pairs,
    commutative_cancel,
    merge_rotations,
    optimize,
    run_rules,
)
from .pipeline import transpile
from .routing import RoutingResult, route, validate_routed

__all__ = [
    "CouplingMap",
    "Layout",
    "RoutingResult",
    "cancel_adjacent_pairs",
    "commutative_cancel",
    "dense_initial_layout",
    "falcon_27",
    "full",
    "ion_trap",
    "sycamore_like",
    "grid",
    "heavy_hex",
    "linear",
    "manhattan_65",
    "melbourne",
    "fuse_swap_cx",
    "merge_rotations",
    "optimize",
    "ring",
    "route",
    "run_rules",
    "transpile",
    "trivial_layout",
    "validate_routed",
]
