"""Generic transpilation substrate: coupling maps, layout, routing, peephole."""

from .coupling import (
    CouplingMap,
    falcon_27,
    full,
    ion_trap,
    sycamore_like,
    grid,
    heavy_hex,
    linear,
    manhattan_65,
    melbourne,
    ring,
)
from .layout import Layout, dense_initial_layout, trivial_layout
from .peephole import (
    fuse_swap_cx,
    cancel_adjacent_pairs,
    commutative_cancel,
    merge_rotations,
    optimize,
    run_rules,
)
from .pipeline import transpile
from .routing import (
    RoutingResult,
    reliability_cost_matrix,
    route,
    validate_routed,
)
from .devices import DeviceSpec, device_names, get_device, load_device

__all__ = [
    "CouplingMap",
    "DeviceSpec",
    "Layout",
    "RoutingResult",
    "cancel_adjacent_pairs",
    "commutative_cancel",
    "dense_initial_layout",
    "device_names",
    "falcon_27",
    "full",
    "ion_trap",
    "sycamore_like",
    "grid",
    "heavy_hex",
    "linear",
    "manhattan_65",
    "melbourne",
    "fuse_swap_cx",
    "get_device",
    "load_device",
    "merge_rotations",
    "optimize",
    "reliability_cost_matrix",
    "ring",
    "route",
    "run_rules",
    "transpile",
    "trivial_layout",
    "validate_routed",
]
