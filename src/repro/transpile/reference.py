"""Seed implementations of the peephole passes and the SABRE router.

These are faithful copies of the original rebuild-the-world implementations
(mutable gate lists with per-sweep ``_wire_sequences``/position-dict
rebuilds, and the cursor-scanning router), kept as the *oracle* for the
tape-based worklist engine in :mod:`repro.transpile.peephole` and the
incremental router in :mod:`repro.transpile.routing`:

* the equivalence tests check that the new passes produce circuits
  statevector/unitary-equivalent to these (and, for the router,
  gate-for-gate identical);
* ``benchmarks/bench_kernels.py`` times the new engine against these to
  report the transpile-stage speedups.

Do not "optimize" this module — its value is being the unchanged seed
semantics.  It shares no code with the live passes so the two cannot
drift together.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit import Gate, QuantumCircuit
from ..circuit.gates import ROTATION_GATES, inverse_gate
from .coupling import CouplingMap
from .layout import Layout, dense_initial_layout

__all__ = [
    "seed_cancel_adjacent_pairs",
    "seed_merge_rotations",
    "seed_commutative_cancel",
    "seed_fuse_swap_cx",
    "seed_optimize",
    "seed_route",
]

_TWO_PI = 2.0 * math.pi

_DIAGONAL_1Q = frozenset({"z", "s", "sdg", "rz"})
_X_AXIS_1Q = frozenset({"x", "rx"})

_MERGE_AXIS = {"rz": "z", "rx": "x", "ry": "y", "z": "z", "x": "x", "y": "y",
               "s": "z", "sdg": "z", "h": "h", "yh": "yh"}

_FIXED_ANGLE = {"z": math.pi, "x": math.pi, "y": math.pi,
                "s": math.pi / 2.0, "sdg": -math.pi / 2.0}


def _wire_sequences(gates: List[Optional[Gate]]) -> Dict[int, List[int]]:
    wires: Dict[int, List[int]] = {}
    for idx, gate in enumerate(gates):
        if gate is None:
            continue
        for q in gate.qubits:
            wires.setdefault(q, []).append(idx)
    return wires


def _rebuild(circuit: QuantumCircuit, gates: List[Optional[Gate]]) -> QuantumCircuit:
    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    out.extend(g for g in gates if g is not None)
    return out


def seed_cancel_adjacent_pairs(circuit: QuantumCircuit) -> Tuple[QuantumCircuit, int]:
    """Seed pass: cancel gate/inverse pairs adjacent on every shared wire."""
    gates: List[Optional[Gate]] = list(circuit.gates)
    removed = 0
    changed = True
    while changed:
        changed = False
        wires = _wire_sequences(gates)
        position = {
            (idx, q): pos
            for q, seq in wires.items()
            for pos, idx in enumerate(seq)
        }
        for idx, gate in enumerate(gates):
            if gate is None:
                continue
            succ = _common_successor(gates, wires, position, idx, gate)
            if succ is None:
                continue
            partner = gates[succ]
            if partner is None:
                continue
            if partner == inverse_gate(gate) and partner.qubits == gate.qubits:
                if gate.name in ROTATION_GATES:
                    continue  # rotation pairs are handled by merge_rotations
                gates[idx] = None
                gates[succ] = None
                removed += 2
                changed = True
        if changed:
            gates = [g for g in gates if g is not None]
    return _rebuild(circuit, gates), removed


def _common_successor(gates, wires, position, idx, gate) -> Optional[int]:
    succ = None
    for q in gate.qubits:
        seq = wires[q]
        pos = position[(idx, q)]
        if pos + 1 >= len(seq):
            return None
        nxt = seq[pos + 1]
        if succ is None:
            succ = nxt
        elif succ != nxt:
            return None
    return succ


def seed_merge_rotations(circuit: QuantumCircuit) -> Tuple[QuantumCircuit, int]:
    """Seed pass: fuse adjacent same-axis 1q rotations; drop ~zero angles."""
    gates: List[Optional[Gate]] = list(circuit.gates)
    removed = 0
    changed = True
    while changed:
        changed = False
        wires = _wire_sequences(gates)
        for q, seq in wires.items():
            for pos in range(len(seq) - 1):
                i, j = seq[pos], seq[pos + 1]
                a, b = gates[i], gates[j]
                if a is None or b is None:
                    continue
                if a.num_qubits != 1 or b.num_qubits != 1:
                    continue
                merged = _merge_pair(a, b)
                if merged is None:
                    continue
                gates[i] = None
                gates[j] = merged if merged != "drop" else None
                removed += 2 if merged == "drop" else 1
                changed = True
        if changed:
            gates = [g for g in gates if g is not None]
    return _rebuild(circuit, gates), removed


def _merge_pair(a: Gate, b: Gate):
    axis_a = _MERGE_AXIS.get(a.name)
    axis_b = _MERGE_AXIS.get(b.name)
    if axis_a is None or axis_a != axis_b:
        return None
    qubit = a.qubits
    if axis_a in ("h", "yh"):
        return "drop" if a.name == b.name else None
    angle_a = a.params[0] if a.params else _FIXED_ANGLE[a.name]
    angle_b = b.params[0] if b.params else _FIXED_ANGLE[b.name]
    total = math.remainder(angle_a + angle_b, _TWO_PI)
    if abs(total) < 1e-12:
        return "drop"
    return Gate(f"r{axis_a}", qubit, (total,))


def seed_commutative_cancel(circuit: QuantumCircuit) -> Tuple[QuantumCircuit, int]:
    """Seed pass: cancel equal CNOT pairs separated by commuting 1q gates."""
    gates: List[Optional[Gate]] = list(circuit.gates)
    removed = 0
    changed = True
    while changed:
        changed = False
        wires = _wire_sequences(gates)
        position = {
            (idx, q): pos
            for q, seq in wires.items()
            for pos, idx in enumerate(seq)
        }
        for idx, gate in enumerate(gates):
            if gate is None or gate.name != "cx":
                continue
            control, target = gate.qubits
            j_c = _next_blocking(gates, wires, position, idx, control, _DIAGONAL_1Q)
            j_t = _next_blocking(gates, wires, position, idx, target, _X_AXIS_1Q)
            if j_c is None or j_c != j_t:
                continue
            partner = gates[j_c]
            if partner is not None and partner.name == "cx" and partner.qubits == gate.qubits:
                gates[idx] = None
                gates[j_c] = None
                removed += 2
                changed = True
        if changed:
            gates = [g for g in gates if g is not None]
    return _rebuild(circuit, gates), removed


def _next_blocking(gates, wires, position, idx, qubit, transparent) -> Optional[int]:
    seq = wires[qubit]
    pos = position[(idx, qubit)]
    for nxt in seq[pos + 1:]:
        gate = gates[nxt]
        if gate is None:
            continue
        if gate.num_qubits == 1 and gate.name in transparent:
            continue
        return nxt
    return None


def seed_fuse_swap_cx(circuit: QuantumCircuit) -> Tuple[QuantumCircuit, int]:
    """Seed pass: fuse a SWAP with an adjacent CNOT on the same qubit pair."""
    gates: List[Optional[Gate]] = list(circuit.gates)
    fused = 0
    changed = True
    while changed:
        changed = False
        wires = _wire_sequences(gates)
        position = {
            (idx, q): pos
            for q, seq in wires.items()
            for pos, idx in enumerate(seq)
        }
        for idx, gate in enumerate(gates):
            if gate is None:
                continue
            succ = _common_successor(gates, wires, position, idx, gate)
            if succ is None:
                continue
            partner = gates[succ]
            if partner is None or set(partner.qubits) != set(gate.qubits):
                continue
            if gate.name == "swap" and partner.name == "cx":
                c, t = partner.qubits
                gates[idx] = Gate("cx", (c, t))
                gates[succ] = Gate("cx", (t, c))
            elif gate.name == "cx" and partner.name == "swap":
                c, t = gate.qubits
                gates[idx] = Gate("cx", (t, c))
                gates[succ] = Gate("cx", (c, t))
            else:
                continue
            fused += 1
            changed = True
            break
    return _rebuild(circuit, gates), fused


def seed_optimize(circuit: QuantumCircuit, max_rounds: int = 50) -> QuantumCircuit:
    """Seed fixpoint loop: run all four passes until none fires."""
    current = circuit
    for _ in range(max_rounds):
        total = 0
        current, n = seed_cancel_adjacent_pairs(current)
        total += n
        current, n = seed_merge_rotations(current)
        total += n
        current, n = seed_commutative_cancel(current)
        total += n
        current, n = seed_fuse_swap_cx(current)
        total += n
        if total == 0:
            break
    return current


# ----------------------------------------------------------------------
# Seed SABRE router
# ----------------------------------------------------------------------

_EXTENDED_SIZE = 20
_EXTENDED_WEIGHT = 0.5
_DECAY_STEP = 0.001
_DECAY_RESET_INTERVAL = 5


def seed_route(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Optional[Layout] = None,
):
    """Seed SABRE routing; returns ``(circuit, initial_layout, final_layout,
    swap_count)``."""
    if initial_layout is None:
        initial_layout = dense_initial_layout(coupling, circuit.num_qubits)
    layout = initial_layout.copy()
    out = QuantumCircuit(coupling.num_qubits, name=circuit.name)
    gates = list(circuit.gates)
    n = len(gates)

    per_qubit: Dict[int, List[int]] = {q: [] for q in range(circuit.num_qubits)}
    for idx, gate in enumerate(gates):
        for q in gate.qubits:
            per_qubit[q].append(idx)
    cursor = {q: 0 for q in per_qubit}
    emitted = [False] * n
    decay = [1.0] * coupling.num_qubits
    steps_since_reset = 0
    swap_count = 0

    def ready(idx: int) -> bool:
        return all(
            per_qubit[q][cursor[q]] == idx for q in gates[idx].qubits
        )

    def advance(idx: int) -> None:
        for q in gates[idx].qubits:
            cursor[q] += 1

    def front_layer() -> List[int]:
        front = []
        for q, seq in per_qubit.items():
            if cursor[q] < len(seq):
                idx = seq[cursor[q]]
                if not emitted[idx] and ready(idx) and idx not in front:
                    front.append(idx)
        return front

    def emit(idx: int) -> None:
        gate = gates[idx]
        physical = tuple(layout.physical(q) for q in gate.qubits)
        out.append(Gate(gate.name, physical, gate.params))
        emitted[idx] = True
        advance(idx)

    def executable(idx: int) -> bool:
        gate = gates[idx]
        if gate.num_qubits == 1:
            return True
        p0, p1 = (layout.physical(q) for q in gate.qubits)
        return coupling.is_connected(p0, p1)

    def extended_set(front: Sequence[int]) -> List[int]:
        result: List[int] = []
        local_cursor = dict(cursor)
        frontier = list(front)
        seen: Set[int] = set(front)
        while frontier and len(result) < _EXTENDED_SIZE:
            idx = frontier.pop(0)
            for q in gates[idx].qubits:
                pos = local_cursor[q]
                seq = per_qubit[q]
                while pos < len(seq) and seq[pos] != idx:
                    pos += 1
                nxt = pos + 1
                if nxt < len(seq):
                    succ = seq[nxt]
                    if succ not in seen:
                        seen.add(succ)
                        if gates[succ].num_qubits == 2:
                            result.append(succ)
                        frontier.append(succ)
        return result

    def score(front: Sequence[int], ext: Sequence[int], trial: Layout, swap: Tuple[int, int]) -> float:
        total = 0.0
        for idx in front:
            q0, q1 = gates[idx].qubits
            total += coupling.distance(trial.physical(q0), trial.physical(q1))
        total *= max(decay[swap[0]], decay[swap[1]])
        if ext:
            ext_sum = 0.0
            for idx in ext:
                q0, q1 = gates[idx].qubits
                ext_sum += coupling.distance(trial.physical(q0), trial.physical(q1))
            total += _EXTENDED_WEIGHT * ext_sum / len(ext)
        return total

    while True:
        front = front_layer()
        if not front:
            break
        progressed = False
        for idx in list(front):
            if executable(idx):
                emit(idx)
                progressed = True
        if progressed:
            continue

        front = front_layer()
        blocked_physical: Set[int] = set()
        for idx in front:
            for q in gates[idx].qubits:
                blocked_physical.add(layout.physical(q))
        candidates: Set[Tuple[int, int]] = set()
        for p in blocked_physical:
            for nbr in coupling.neighbors(p):
                candidates.add(tuple(sorted((p, nbr))))
        ext = extended_set(front)
        best_swap = None
        best_score = None
        for swap in sorted(candidates):
            trial = layout.copy()
            trial.swap_physical(*swap)
            s = score(front, ext, trial, swap)
            if best_score is None or s < best_score:
                best_score = s
                best_swap = swap
        assert best_swap is not None, "no swap candidates on a connected device"
        out.append(Gate("swap", best_swap))
        layout.swap_physical(*best_swap)
        swap_count += 1
        decay[best_swap[0]] += _DECAY_STEP
        decay[best_swap[1]] += _DECAY_STEP
        steps_since_reset += 1
        if steps_since_reset >= _DECAY_RESET_INTERVAL:
            decay = [1.0] * coupling.num_qubits
            steps_since_reset = 0

    return out, initial_layout, layout, swap_count
