"""Sharded compile fabric: a consistent-hash router over N gateways.

The eleventh architectural layer.  One :class:`CompileGateway` (PR 5) is
a single daemon owning one cache: one process death loses all serving
capacity, and throughput is capped at one node.  This module scales the
same wire protocol horizontally::

                          clients (protocol.py frames)
                                     │
                             ┌───────▼────────┐
                             │  ClusterRouter │   fingerprint → shard
                             │  (hash ring,   │   quotas, health,
                             │   quotas)      │   failover, stats
                             └───┬────┬────┬──┘
                        trunk ┌──┘    │    └──┐ trunk
                      ┌───────▼─┐ ┌───▼────┐ ┌▼────────┐
                      │ node-0  │ │ node-1 │ │ node-2  │   CompileGateway,
                      │ store-0 │ │ store-1│ │ store-2 │   shared-store
                      └────┬────┘ └───┬────┘ └────┬────┘   workers
                           └── pull-through ──────┘        (cache.py)

Pieces:

* :class:`HashRing` — deterministic consistent hashing with virtual
  nodes.  Points are SHA-256 based (never Python's randomized ``hash``),
  so every process that builds the ring from the same member names maps
  every fingerprint to the same owner, and membership changes move only
  the departed/arrived node's ranges.
* :class:`ClusterRouter` — an asyncio daemon speaking the exact gateway
  protocol on both sides.  Compile requests are fingerprinted (memoized,
  off-loop), quota-checked (per-connection and per-tenant), and
  forwarded verbatim to the shard owner over a persistent multiplexed
  trunk connection; responses stream back re-keyed to the client's ids.
  A dead trunk fails the node immediately: its ring ranges fall over to
  the surviving members and in-flight forwards are retried there
  (compiles are pure and content-addressed, so a replay is idempotent).
  The router keeps its own :class:`~repro.service.metrics.GatewayMetrics`
  ledger — every received request ends in exactly one outcome counter —
  and its ``stats`` verb aggregates each node's snapshot plus a
  cluster-wide sum.
* :class:`ClusterSupervisor` — synchronous process manager for local
  node fleets (`repro.cli serve` children): start, wait-ready, restart
  on death, stop.  The fault-injection soak SIGKILLs the children it
  manages.

Artifact replication is *pull-through* at the store layer (see
:meth:`repro.service.cache.CompileCache.pull_through`): each node's
cache lists its peers' store directories as a replica set, so a miss on
the shard owner probes the replicas before compiling and publishes what
it finds with the exclusive-link merge.  Because replication is
filesystem-level, a dead node's already-published artifacts remain
servable by whoever inherits its ranges.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import itertools
import json
import os
import signal
import socket as socket_module
import subprocess
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .batch import resolve_spec
from .metrics import GatewayMetrics
from .protocol import (
    E_BAD_SPEC,
    E_CANCELLED,
    E_OVERLOADED,
    E_SHUTTING_DOWN,
    E_UNAVAILABLE,
    E_UNSUPPORTED,
    MAX_FRAME_BYTES,
    ProtocolError,
    Request,
    encode_frame,
    error_frame,
    hello_frame,
    parse_request,
)

__all__ = [
    "HashRing",
    "NodeSpec",
    "ClusterConfig",
    "ClusterRouter",
    "ClusterSupervisor",
    "plan_cluster",
]


# ----------------------------------------------------------------------
# Consistent hashing
# ----------------------------------------------------------------------

class HashRing:
    """Deterministic consistent-hash ring with virtual nodes.

    Each member contributes ``vnodes`` points at
    ``sha256(name + "\\x00" + i)``; a key lands on the first point
    clockwise from ``sha256(key)``.  SHA-256 keeps the mapping identical
    across processes and Python versions (no seeded ``hash()``), and
    per-member points mean removing a node only reassigns *its* ranges —
    the minimal-remap property the cluster's cache locality relies on.
    """

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = 128):
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.vnodes = int(vnodes)
        self._points: List[Tuple[int, str]] = []
        self._members: Set[str] = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _point(data: str) -> int:
        digest = hashlib.sha256(data.encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def add(self, node: str) -> None:
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._members:
            return
        self._members.add(node)
        for index in range(self.vnodes):
            entry = (self._point(f"{node}\x00{index}"), node)
            bisect.insort(self._points, entry)

    def remove(self, node: str) -> None:
        if node not in self._members:
            return
        self._members.discard(node)
        self._points = [(p, n) for (p, n) in self._points if n != node]

    def members(self) -> Tuple[str, ...]:
        return tuple(sorted(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node: str) -> bool:
        return node in self._members

    def owner(self, key: str) -> Optional[str]:
        """The member owning ``key``; ``None`` on an empty ring."""
        preferred = self.preference(key, 1)
        return preferred[0] if preferred else None

    def preference(self, key: str, count: Optional[int] = None) -> List[str]:
        """The first ``count`` *distinct* members clockwise from the
        key's point — the owner first, then its natural failover order
        (the replica set for that key)."""
        if not self._points:
            return []
        want = len(self._members) if count is None \
            else max(0, min(count, len(self._members)))
        index = bisect.bisect_left(self._points, (self._point(key), ""))
        out: List[str] = []
        seen: Set[str] = set()
        for step in range(len(self._points)):
            _, node = self._points[(index + step) % len(self._points)]
            if node not in seen:
                seen.add(node)
                out.append(node)
                if len(out) >= want:
                    break
        return out


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------

@dataclass
class NodeSpec:
    """One gateway node as the router (and supervisor) sees it."""

    name: str
    #: Unix socket of the node's gateway; wins over host/port.
    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0
    #: The node's on-disk store — needed by the supervisor to launch it
    #: and by peers as a pull-through replica root.
    cache_root: Optional[str] = None
    workers: int = 1
    queue_limit: int = 64
    per_client_limit: int = 16
    #: Peer store directories this node probes on a local miss.
    peer_stores: Tuple[str, ...] = ()
    replica_probes: Optional[int] = None
    #: Tiered speculative compilation on this node (opt-1 answer now,
    #: background opt-3 upgrade).
    speculate: bool = False
    speculative_limit: int = 8


@dataclass
class ClusterConfig:
    """Everything that shapes one router's behavior."""

    #: Router listen address (same precedence rules as GatewayConfig).
    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0
    nodes: Tuple[NodeSpec, ...] = ()
    vnodes: int = 128
    #: Cap on one client connection's unanswered compile requests.
    per_client_limit: int = 32
    #: Per-tenant caps on outstanding compiles across all connections;
    #: tenants not listed fall back to ``default_tenant_quota``
    #: (``None`` = unlimited).  Requests carrying no tenant are only
    #: subject to the per-connection cap.
    tenant_quotas: Dict[str, int] = field(default_factory=dict)
    default_tenant_quota: Optional[int] = None
    #: How many *additional* nodes a forward may fail over to after its
    #: first node dies under it.
    forward_retries: int = 2
    health_interval: float = 1.0
    health_timeout: float = 5.0
    #: Consecutive ping failures before a live trunk is declared dead
    #: (an EOF/reset on the trunk fails the node immediately).
    health_failures: int = 2
    connect_timeout: float = 2.0
    fingerprint_memo_entries: int = 4096
    allow_shutdown: bool = False
    drain_timeout: float = 30.0


def plan_cluster(state_dir: os.PathLike, nodes: int = 3, workers: int = 1,
                 queue_limit: int = 64,
                 node_per_client_limit: Optional[int] = None,
                 replica_probes: Optional[int] = None,
                 speculate: bool = False,
                 speculative_limit: int = 8,
                 **router_kwargs) -> ClusterConfig:
    """Lay out an N-node local cluster under ``state_dir``.

    Each node gets ``node-<i>.sock`` and ``store-<i>/`` and lists every
    other node's store as a pull-through replica; the router listens on
    ``router.sock``.  Extra keyword arguments configure the router
    (``vnodes``, ``tenant_quotas``, ``per_client_limit``, ...).  Purely
    a path plan — nothing is created on disk.

    ``node_per_client_limit`` defaults to ``queue_limit``: the router
    funnels *every* client's traffic to a node over one trunk
    connection, so the node-side per-client cap must not be the
    bottleneck (admission control belongs to the node's global queue
    limit and the router's own per-client/tenant quotas).
    """
    if nodes < 1:
        raise ValueError("a cluster needs at least one node")
    if node_per_client_limit is None:
        node_per_client_limit = queue_limit
    state = Path(state_dir)
    roots = [str(state / f"store-{i}") for i in range(nodes)]
    specs = tuple(
        NodeSpec(
            name=f"node-{i}",
            socket_path=str(state / f"node-{i}.sock"),
            cache_root=roots[i],
            workers=workers,
            queue_limit=queue_limit,
            per_client_limit=node_per_client_limit,
            peer_stores=tuple(r for j, r in enumerate(roots) if j != i),
            replica_probes=replica_probes,
            speculate=speculate,
            speculative_limit=speculative_limit,
        )
        for i in range(nodes)
    )
    router_kwargs.setdefault("socket_path", str(state / "router.sock"))
    return ClusterConfig(nodes=specs, **router_kwargs)


# ----------------------------------------------------------------------
# Router internals
# ----------------------------------------------------------------------

@dataclass
class _Forward:
    """One client compile request in flight somewhere in the cluster."""

    client: "_RouterClient"
    request_id: str
    router_id: str
    frame: Dict                  # original compile frame, id rewritten on send
    fingerprint: str
    tenant: Optional[str]
    received_at: float
    attempts: int = 0
    node: Optional[str] = None   # name of the node currently holding it
    cancel_requested: bool = False
    done: bool = False


class _Trunk:
    """The router's persistent multiplexed connection to one node."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.send_lock = asyncio.Lock()
        self.pending: Dict[str, _Forward] = {}
        #: Router-originated requests (pings, stats fan-out) by id.
        self.waiters: Dict[str, asyncio.Future] = {}
        self.reader_task: Optional[asyncio.Task] = None

    async def send(self, frame: Dict) -> bool:
        async with self.send_lock:
            try:
                self.writer.write(encode_frame(frame))
                await self.writer.drain()
                return True
            except (ConnectionError, RuntimeError, OSError):
                return False


class _Node:
    """Router-side view of one gateway node."""

    def __init__(self, spec: NodeSpec):
        self.spec = spec
        self.trunk: Optional[_Trunk] = None
        self.healthy = False
        self.failures = 0
        self.connects = 0    # successful trunk establishments (restarts show)


class _RouterClient:
    """Per-connection state on the router's client side."""

    _ids = itertools.count(1)

    def __init__(self, writer: asyncio.StreamWriter):
        self.id = next(self._ids)
        self.writer = writer
        self.send_lock = asyncio.Lock()
        self.closed = False
        #: Unanswered compile forwards keyed by the client's request id.
        self.waiting: Dict[str, _Forward] = {}


def _spec_fingerprint(spec: Dict) -> str:
    """Spec → content fingerprint (blocking: runs on the executor)."""
    return resolve_spec(spec).fingerprint()


#: Node error codes the router passes through as clean rejections.
_REJECT_CODES = (E_OVERLOADED, E_SHUTTING_DOWN, E_UNAVAILABLE)


class ClusterRouter:
    """Fingerprint-sharding front for a fleet of compile gateways.

    Speaks :mod:`repro.service.protocol` to clients and to every node;
    ``await start()``, then hold it open; ``await close()`` drains and
    releases everything.  Single event loop, no threads of its own —
    spec fingerprinting is the only CPU-bound step and runs on the
    default executor, memoized.
    """

    def __init__(self, config: ClusterConfig):
        if not config.nodes:
            raise ValueError("a cluster router needs at least one node spec")
        names = [spec.name for spec in config.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names in {names}")
        self.config = config
        self.ring = HashRing(vnodes=config.vnodes)
        self.metrics = GatewayMetrics()
        self.shutdown_requested = asyncio.Event()
        self._nodes: Dict[str, _Node] = {
            spec.name: _Node(spec) for spec in config.nodes
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._clients: Set[_RouterClient] = set()
        self._forward_ids = itertools.count(1)
        self._request_ids = itertools.count(1)
        self._fp_memo: "OrderedDict[str, str]" = OrderedDict()
        #: Tenant → outstanding forwarded compiles (quota denominator).
        self._tenants: Dict[str, int] = {}
        self._tenant_received: Dict[str, int] = {}
        #: Recently finished router-id → (client, client request id), so a
        #: node's trailing cancel ack can still be translated back.
        self._recent: "OrderedDict[str, Tuple[_RouterClient, str]]" = \
            OrderedDict()
        self._health_task: Optional[asyncio.Task] = None
        self._health_wake = asyncio.Event()
        self._tasks: Set[asyncio.Task] = set()
        self._closing = False
        self._bound = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, wait_nodes: bool = True) -> None:
        """Bind the listen socket and begin health-checking the fleet.

        ``wait_nodes`` runs one immediate connect pass so a router whose
        nodes are already up starts with a populated ring.
        """
        if self.config.socket_path:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.socket_path,
                limit=MAX_FRAME_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port,
                limit=MAX_FRAME_BYTES,
            )
        self._bound = True
        if wait_nodes:
            await self._probe_all()
        self._health_task = asyncio.create_task(self._health_loop())

    @property
    def address(self) -> str:
        if self.config.socket_path:
            return self.config.socket_path
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return f"{host}:{port}"

    @property
    def port(self) -> Optional[int]:
        if self.config.socket_path or self._server is None:
            return None
        return self._server.sockets[0].getsockname()[1]

    def healthy_nodes(self) -> Tuple[str, ...]:
        return tuple(sorted(
            name for name, node in self._nodes.items() if node.healthy))

    async def close(self, drain: bool = True) -> None:
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            deadline = time.monotonic() + self.config.drain_timeout
            while (any(c.waiting for c in self._clients)
                   and time.monotonic() < deadline):
                await asyncio.sleep(0.02)
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
        # Whatever still waits gets a clean refusal, counted in the
        # ledger, before the sockets die.
        for client in list(self._clients):
            for forward in list(client.waiting.values()):
                await self._finish(forward, "rejected", [error_frame(
                    "compile", forward.request_id, E_SHUTTING_DOWN,
                    "cluster router is shutting down")])
            client.closed = True
            try:
                client.writer.close()
            except Exception:
                pass
        for node in self._nodes.values():
            if node.trunk is not None:
                await self._drop_trunk(node, node.trunk, retry=False)
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if (self._bound and self.config.socket_path):
            await asyncio.get_running_loop().run_in_executor(
                None, self._unlink_socket)

    def _unlink_socket(self) -> None:
        try:
            os.unlink(self.config.socket_path)
        except OSError:
            pass

    def _spawn(self, coro) -> asyncio.Task:
        task = asyncio.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    # ------------------------------------------------------------------
    # Node health / trunks
    # ------------------------------------------------------------------
    async def _health_loop(self) -> None:
        while not self._closing:
            try:
                await asyncio.wait_for(
                    self._health_wake.wait(),
                    timeout=self.config.health_interval)
            except asyncio.TimeoutError:
                pass
            self._health_wake.clear()
            if self._closing:
                return
            await self._probe_all()

    async def _probe_all(self) -> None:
        await asyncio.gather(
            *(self._probe_node(node) for node in self._nodes.values()),
            return_exceptions=True,
        )

    async def _probe_node(self, node: _Node) -> None:
        if node.trunk is None:
            await self._connect_node(node)
            return
        trunk = node.trunk
        try:
            await self._node_request(
                node, {"op": "ping"}, timeout=self.config.health_timeout)
            node.failures = 0
        except (ConnectionError, asyncio.TimeoutError, OSError):
            node.failures += 1
            if node.failures >= self.config.health_failures:
                await self._drop_trunk(node, trunk)

    async def _connect_node(self, node: _Node) -> bool:
        spec = node.spec
        try:
            if spec.socket_path:
                opening = asyncio.open_unix_connection(
                    spec.socket_path, limit=MAX_FRAME_BYTES)
            else:
                opening = asyncio.open_connection(
                    spec.host, spec.port, limit=MAX_FRAME_BYTES)
            reader, writer = await asyncio.wait_for(
                opening, self.config.connect_timeout)
            hello = await asyncio.wait_for(
                reader.readline(), self.config.connect_timeout)
            if not hello:
                raise ConnectionError("node closed during hello")
        except (OSError, ConnectionError, asyncio.TimeoutError, ValueError):
            node.failures += 1
            return False
        trunk = _Trunk(reader, writer)
        node.trunk = trunk
        node.healthy = True
        node.failures = 0
        node.connects += 1
        self.ring.add(spec.name)
        trunk.reader_task = self._spawn(self._trunk_reader(node, trunk))
        return True

    async def _trunk_reader(self, node: _Node, trunk: _Trunk) -> None:
        try:
            while True:
                try:
                    line = await trunk.reader.readline()
                except ValueError:   # over-long frame: trunk unusable
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    frame = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(frame, dict):
                    await self._on_node_frame(node, trunk, frame)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            await self._drop_trunk(node, trunk)

    async def _drop_trunk(self, node: _Node, trunk: _Trunk,
                          retry: bool = True) -> None:
        """Fail a node: remove its ring ranges, rehome its in-flight
        forwards.  Idempotent per trunk (reader teardown and health-loop
        detection can both get here)."""
        if node.trunk is not trunk:
            return
        node.trunk = None
        node.healthy = False
        self.ring.remove(node.spec.name)
        if trunk.reader_task is not None \
                and trunk.reader_task is not asyncio.current_task():
            trunk.reader_task.cancel()
        for future in trunk.waiters.values():
            if not future.done():
                future.set_exception(
                    ConnectionError("node connection lost"))
        trunk.waiters.clear()
        pending = list(trunk.pending.values())
        trunk.pending.clear()
        try:
            trunk.writer.close()
        except Exception:
            pass
        for forward in pending:
            if forward.done:
                continue
            if not retry or forward.cancel_requested:
                await self._finish(forward, "cancelled", [
                    error_frame("compile", forward.request_id, E_CANCELLED,
                                "node lost while cancelling"),
                    {"op": "cancel", "id": forward.request_id, "ok": True,
                     "state": "cancelled"},
                ])
            else:
                # Failover: the ring no longer contains this node, so the
                # retry lands on the key's next preference — replaying a
                # pure, content-addressed compile is safe.
                self._spawn(self._forward(forward))
        if retry and not self._closing:
            self._health_wake.set()

    async def _node_request(self, node: _Node, frame: Dict,
                            timeout: float) -> Dict:
        """One router-originated round trip on a node's trunk."""
        trunk = node.trunk
        if trunk is None:
            raise ConnectionError(f"{node.spec.name} has no trunk")
        rid = f"rt-{next(self._request_ids)}"
        frame = dict(frame)
        frame["id"] = rid
        future = asyncio.get_running_loop().create_future()
        trunk.waiters[rid] = future
        try:
            if not await trunk.send(frame):
                raise ConnectionError(f"{node.spec.name} trunk send failed")
            return await asyncio.wait_for(future, timeout)
        finally:
            trunk.waiters.pop(rid, None)

    async def _on_node_frame(self, node: _Node, trunk: _Trunk,
                             frame: Dict) -> None:
        rid = frame.get("id")
        rid = None if rid is None else str(rid)
        future = trunk.waiters.get(rid)
        if future is not None:
            if not future.done():
                future.set_result(frame)
            return
        if frame.get("op") == "cancel":
            # Ack for a forwarded cancel: translate the id back.  The
            # matching compile outcome frame travels separately (the node
            # answers the compile *before* acking the cancel), so the
            # forward may already have finished — _recent bridges that.
            target = None
            forward = trunk.pending.get(rid)
            if forward is not None:
                target = (forward.client, forward.request_id)
            elif rid in self._recent:
                target = self._recent[rid]
            if target is not None:
                out = dict(frame)
                out["id"] = target[1]
                await self._send(target[0], out)
            return
        if frame.get("op") == "upgrade":
            # Speculative-lane push: trails the compile response it
            # belongs to, so the forward has normally already finished —
            # translate the id back through _recent and relay verbatim.
            # Want_upgrade travelled to the node inside the raw compile
            # frame, so only subscribed clients ever get one of these.
            target = None
            forward = trunk.pending.get(rid)
            if forward is not None:
                target = (forward.client, forward.request_id)
            elif rid in self._recent:
                target = self._recent[rid]
            if target is not None:
                out = dict(frame)
                out["id"] = target[1]
                await self._send(target[0], out)
            return
        forward = trunk.pending.pop(rid, None)
        if forward is None or forward.done:
            return
        out = dict(frame)
        out["id"] = forward.request_id
        if frame.get("ok"):
            counter = "warm_hits" if frame.get("cached") else "completed"
        else:
            code = frame.get("code")
            if code in _REJECT_CODES:
                counter = "rejected"
            elif code == E_BAD_SPEC:
                counter = "bad_specs"
            elif code == E_CANCELLED:
                counter = "cancelled"
            else:
                counter = "failed"
        await self._finish(forward, counter, [out])

    # ------------------------------------------------------------------
    # Client connections
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        client = _RouterClient(writer)
        self._clients.add(client)
        self.metrics.incr("connections_total")
        await self._send(client, hello_frame(server="repro-cluster"))
        try:
            while not client.closed:
                try:
                    line = await reader.readline()
                except ValueError:
                    self.metrics.incr("bad_requests")
                    await self._send(client, error_frame(
                        None, None, "bad-frame", "frame exceeds size limit"))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                await self._handle_frame(client, line)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            await self._disconnect(client)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle_frame(self, client: _RouterClient, line: bytes) -> None:
        received_at = time.perf_counter()
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self.metrics.incr("bad_requests")
            await self._send(client, error_frame(
                None, exc.request_id, exc.code, str(exc)))
            return
        if request.op == "ping":
            await self._send(client, {"op": "pong", "id": request.id,
                                      "ok": True})
        elif request.op == "stats":
            stats = await self.cluster_stats()
            await self._send(client, {"op": "stats", "id": request.id,
                                      "ok": True, "stats": stats})
        elif request.op == "shutdown":
            if not self.config.allow_shutdown:
                await self._send(client, error_frame(
                    "shutdown", request.id, E_UNSUPPORTED,
                    "shutdown verb is disabled (start with --allow-shutdown)"))
                return
            await self._send(client, {"op": "shutdown", "id": request.id,
                                      "ok": True})
            self.shutdown_requested.set()
        elif request.op == "cancel":
            await self._handle_cancel(client, request)
        else:
            await self._handle_compile(client, request, received_at)

    async def _handle_compile(self, client: _RouterClient, request: Request,
                              received_at: float) -> None:
        self.metrics.incr("received")
        if request.tenant is not None:
            self._tenant_received[request.tenant] = \
                self._tenant_received.get(request.tenant, 0) + 1
        try:
            fingerprint = await self._fingerprint(request.spec)
        except (ValueError, KeyError, TypeError) as exc:
            self.metrics.incr("bad_specs")
            await self._send(client, error_frame(
                "compile", request.id, E_BAD_SPEC, str(exc)))
            return
        if self._closing:
            self.metrics.incr("rejected")
            await self._send(client, error_frame(
                "compile", request.id, E_SHUTTING_DOWN,
                "cluster router is shutting down"))
            return
        if len(client.waiting) >= self.config.per_client_limit:
            self.metrics.incr("rejected")
            await self._send(client, error_frame(
                "compile", request.id, E_OVERLOADED,
                f"client has {len(client.waiting)} unanswered requests "
                f"(limit {self.config.per_client_limit})"))
            return
        quota = self._tenant_quota(request.tenant)
        if quota is not None \
                and self._tenants.get(request.tenant, 0) >= quota:
            self.metrics.incr("rejected")
            await self._send(client, error_frame(
                "compile", request.id, E_OVERLOADED,
                f"tenant {request.tenant!r} has "
                f"{self._tenants.get(request.tenant, 0)} outstanding "
                f"requests (quota {quota})"))
            return

        forward = _Forward(
            client=client,
            request_id=request.id,
            router_id=f"fw-{next(self._forward_ids)}",
            frame=dict(request.raw),
            fingerprint=fingerprint,
            tenant=request.tenant,
            received_at=received_at,
        )
        client.waiting[request.id] = forward
        if request.tenant is not None:
            self._tenants[request.tenant] = \
                self._tenants.get(request.tenant, 0) + 1
        self.metrics.incr("admitted")
        await self._forward(forward)

    def _tenant_quota(self, tenant: Optional[str]) -> Optional[int]:
        if tenant is None:
            return None
        quota = self.config.tenant_quotas.get(tenant)
        if quota is None:
            quota = self.config.default_tenant_quota
        return quota

    async def _forward(self, forward: _Forward) -> None:
        """Place one compile on its shard owner, failing over through the
        key's preference order as nodes die under it."""
        while not forward.done:
            if forward.client.closed or forward.cancel_requested:
                await self._finish(forward, "cancelled", [])
                return
            owner = self.ring.owner(forward.fingerprint)
            if owner is None or forward.attempts \
                    > self.config.forward_retries:
                await self._finish(forward, "rejected", [error_frame(
                    "compile", forward.request_id, E_UNAVAILABLE,
                    "no healthy node owns this shard" if owner is None else
                    f"shard owners kept failing ({forward.attempts} attempts)",
                )])
                return
            node = self._nodes[owner]
            trunk = node.trunk
            if trunk is None or not node.healthy:
                # The ring and trunk state disagree for an instant
                # (membership changes mid-await): fail the node and loop.
                if trunk is not None:
                    await self._drop_trunk(node, trunk)
                else:
                    self.ring.remove(owner)
                    self._health_wake.set()
                continue
            forward.attempts += 1
            forward.node = owner
            trunk.pending[forward.router_id] = forward
            frame = dict(forward.frame)
            frame["id"] = forward.router_id
            if await trunk.send(frame):
                return   # the trunk reader owns the response from here
            trunk.pending.pop(forward.router_id, None)
            await self._drop_trunk(node, trunk)

    async def _handle_cancel(self, client: _RouterClient,
                             request: Request) -> None:
        forward = client.waiting.get(request.id)
        if forward is None or forward.done:
            await self._send(client, {"op": "cancel", "id": request.id,
                                      "ok": True, "state": "not-found"})
            return
        forward.cancel_requested = True
        node = self._nodes.get(forward.node) if forward.node else None
        trunk = node.trunk if node is not None else None
        if trunk is not None and forward.router_id in trunk.pending:
            # The node owns the outcome: it answers the compile with
            # E_CANCELLED (or a result, if it raced past the cancel) and
            # acks the cancel; both frames are translated back above.
            await trunk.send({"op": "cancel", "id": forward.router_id})
            return
        # Not currently on any node (between failovers): settle it here.
        await self._finish(forward, "cancelled", [
            error_frame("compile", request.id, E_CANCELLED,
                        "cancelled by request"),
            {"op": "cancel", "id": request.id, "ok": True,
             "state": "cancelled"},
        ])

    async def _disconnect(self, client: _RouterClient) -> None:
        if client not in self._clients:
            return
        self._clients.discard(client)
        client.closed = True
        self.metrics.incr("disconnects")
        for forward in list(client.waiting.values()):
            forward.cancel_requested = True
            node = self._nodes.get(forward.node) if forward.node else None
            trunk = node.trunk if node is not None else None
            if trunk is not None and forward.router_id in trunk.pending:
                # Let the node reap the work; its answer frame settles the
                # ledger (the client is gone, so the frames go nowhere).
                await trunk.send({"op": "cancel", "id": forward.router_id})
            else:
                await self._finish(forward, "cancelled", [])

    # ------------------------------------------------------------------
    # Settlement / send
    # ------------------------------------------------------------------
    async def _finish(self, forward: _Forward, counter: str,
                      frames: Sequence[Dict]) -> None:
        """Settle one forward exactly once: ledger, quota release, client
        frames, and the recent-id bridge for trailing cancel acks."""
        if forward.done:
            return
        forward.done = True
        client = forward.client
        if client.waiting.get(forward.request_id) is forward:
            del client.waiting[forward.request_id]
        if forward.tenant is not None:
            left = self._tenants.get(forward.tenant, 0) - 1
            if left > 0:
                self._tenants[forward.tenant] = left
            else:
                self._tenants.pop(forward.tenant, None)
        self.metrics.incr(counter)
        elapsed = time.perf_counter() - forward.received_at
        if counter == "warm_hits":
            self.metrics.warm_latency.record(elapsed)
        elif counter == "completed":
            self.metrics.cold_latency.record(elapsed)
        self._recent[forward.router_id] = (client, forward.request_id)
        while len(self._recent) > 1024:
            self._recent.popitem(last=False)
        for frame in frames:
            await self._send(client, frame)

    async def _send(self, client: _RouterClient, frame: Dict) -> bool:
        if client.closed:
            return False
        async with client.send_lock:
            if client.closed:
                return False
            try:
                client.writer.write(encode_frame(frame))
                await client.writer.drain()
                return True
            except (ConnectionError, RuntimeError, OSError):
                client.closed = True
                return False

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    async def _fingerprint(self, spec: Dict) -> str:
        key = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        hit = self._fp_memo.get(key)
        if hit is not None:
            self._fp_memo.move_to_end(key)
            return hit
        fingerprint = await asyncio.get_running_loop().run_in_executor(
            None, _spec_fingerprint, spec)
        self._fp_memo[key] = fingerprint
        while len(self._fp_memo) > self.config.fingerprint_memo_entries:
            self._fp_memo.popitem(last=False)
        return fingerprint

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def router_stats(self) -> Dict:
        """The router's own reconciling snapshot (no node round trips)."""
        snap = self.metrics.snapshot()
        snap["pid"] = os.getpid()
        snap["ring"] = {
            "vnodes": self.config.vnodes,
            "members": list(self.ring.members()),
        }
        snap["nodes_healthy"] = len(self.healthy_nodes())
        snap["nodes_total"] = len(self._nodes)
        snap["connections"] = len(self._clients)
        snap["outstanding"] = sum(len(c.waiting) for c in self._clients)
        snap["tenants"] = {
            tenant: {
                "received": self._tenant_received.get(tenant, 0),
                "outstanding": self._tenants.get(tenant, 0),
                "quota": self._tenant_quota(tenant),
            }
            for tenant in sorted(set(self._tenant_received)
                                 | set(self._tenants))
        }
        return snap

    async def cluster_stats(self) -> Dict:
        """The ``stats`` verb payload: router ledger + per-node snapshots
        + cluster-wide sums, fetched from every healthy node in parallel.

        Reconciliation nests: the router's ``requests`` section satisfies
        received == sum(outcomes) for traffic *it* accepted, each node's
        section satisfies it for traffic that *reached* that node, and
        ``cluster.requests`` is the per-node sum (so it reconciles too).
        """

        async def fetch(node: _Node):
            if node.trunk is None:
                return node, None
            try:
                response = await self._node_request(
                    node, {"op": "stats"}, timeout=self.config.health_timeout)
            except (ConnectionError, asyncio.TimeoutError, OSError):
                return node, None
            return node, response.get("stats")

        fetched = await asyncio.gather(
            *(fetch(node) for node in self._nodes.values()))
        nodes_section: Dict[str, Dict] = {}
        cluster_requests: Dict[str, int] = {}
        cluster_cache: Dict[str, int] = {}
        cluster_spec: Dict[str, int] = {}
        for node, stats in sorted(fetched, key=lambda p: p[0].spec.name):
            nodes_section[node.spec.name] = {
                "healthy": node.healthy,
                "address": node.spec.socket_path
                or f"{node.spec.host}:{node.spec.port}",
                "connects": node.connects,
                "stats": stats,
            }
            if not stats:
                continue
            for name, value in stats.get("requests", {}).items():
                if isinstance(value, (int, float)):
                    cluster_requests[name] = \
                        cluster_requests.get(name, 0) + value
            for name, value in stats.get("cache", {}).items():
                if isinstance(value, (int, float)):
                    cluster_cache[name] = cluster_cache.get(name, 0) + value
            # Only the spec_* counters sum meaningfully across nodes
            # (queue gauges and the enabled flag are per-node state).
            for name, value in stats.get("speculative", {}).items():
                if name.startswith("spec_") and isinstance(value, int):
                    cluster_spec[name] = cluster_spec.get(name, 0) + value
        cluster_cache.pop("hit_rate", None)
        return {
            "router": self.router_stats(),
            "nodes": nodes_section,
            "cluster": {
                "requests": cluster_requests,
                "cache": cluster_cache,
                "speculative": cluster_spec,
            },
        }


# ----------------------------------------------------------------------
# Local fleet supervision
# ----------------------------------------------------------------------

class ClusterSupervisor:
    """Run and babysit a local fleet of ``repro.cli serve`` nodes.

    Synchronous by design (the router owns the event loop; process
    management is thread + ``subprocess`` territory): ``start()`` spawns
    every node and waits for its socket to accept, a monitor thread
    restarts any child that dies — which is exactly what the
    fault-injection soak exercises by SIGKILLing them — and ``stop()``
    terminates the fleet cleanly.
    """

    def __init__(self, specs: Sequence[NodeSpec], restart: bool = True,
                 restart_delay: float = 0.25,
                 log_dir: Optional[os.PathLike] = None):
        self.specs = list(specs)
        self.restart = restart
        self.restart_delay = restart_delay
        self.log_dir = Path(log_dir) if log_dir is not None else None
        self._procs: Dict[str, subprocess.Popen] = {}
        self._logs: Dict[str, object] = {}
        self._restarts: Dict[str, int] = {}
        self._stopping = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # -- launch --------------------------------------------------------
    @staticmethod
    def _command(spec: NodeSpec) -> List[str]:
        if not spec.socket_path or not spec.cache_root:
            raise ValueError(
                f"node {spec.name!r} needs socket_path and cache_root "
                f"to be supervised")
        command = [
            sys.executable, "-m", "repro.cli", "serve",
            "--socket", spec.socket_path,
            "--cache", spec.cache_root,
            "--workers", str(spec.workers),
            "--queue-limit", str(spec.queue_limit),
            "--per-client-limit", str(spec.per_client_limit),
        ]
        if spec.peer_stores:
            command += ["--peer-stores", ",".join(spec.peer_stores)]
            if spec.replica_probes is not None:
                command += ["--replica-probes", str(spec.replica_probes)]
        if spec.speculate:
            command += ["--speculate",
                        "--speculative-limit", str(spec.speculative_limit)]
        return command

    @staticmethod
    def _env() -> Dict[str, str]:
        env = dict(os.environ)
        # The child runs `-m repro.cli`: make sure it resolves to *this*
        # checkout even when the parent imported repro off sys.path
        # tweaks (tests, benchmarks) rather than an installed package.
        src = str(Path(__file__).resolve().parents[2])
        parts = [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
                         if p and p != src]
        env["PYTHONPATH"] = os.pathsep.join(parts)
        return env

    def _launch(self, spec: NodeSpec) -> None:
        if self.log_dir is not None:
            self.log_dir.mkdir(parents=True, exist_ok=True)
            log = open(self.log_dir / f"{spec.name}.log", "ab")
        else:
            log = None
        proc = subprocess.Popen(
            self._command(spec),
            stdout=log if log is not None else subprocess.DEVNULL,
            stderr=subprocess.STDOUT,
            env=self._env(),
            start_new_session=True,
        )
        with self._lock:
            old_log = self._logs.pop(spec.name, None)
            self._procs[spec.name] = proc
            if log is not None:
                self._logs[spec.name] = log
        if old_log is not None:
            try:
                old_log.close()
            except Exception:
                pass

    def _wait_listening(self, spec: NodeSpec, deadline: float) -> None:
        while time.monotonic() < deadline:
            with self._lock:
                proc = self._procs.get(spec.name)
            if proc is not None and proc.poll() is not None:
                raise RuntimeError(
                    f"node {spec.name} exited with {proc.returncode} "
                    f"before listening (see {self.log_dir})")
            probe = socket_module.socket(
                socket_module.AF_UNIX, socket_module.SOCK_STREAM)
            try:
                probe.settimeout(0.5)
                probe.connect(spec.socket_path)
                return
            except OSError:
                time.sleep(0.1)
            finally:
                probe.close()
        raise TimeoutError(f"node {spec.name} did not start listening")

    # -- lifecycle -----------------------------------------------------
    def start(self, wait_ready: float = 60.0) -> None:
        for spec in self.specs:
            self._launch(spec)
        deadline = time.monotonic() + wait_ready
        for spec in self.specs:
            self._wait_listening(spec, deadline)
        if self.restart:
            monitor = threading.Thread(
                target=self._monitor_loop, name="cluster-supervisor",
                daemon=True)
            with self._lock:
                self._monitor = monitor
            monitor.start()

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(0.2):
            for spec in self.specs:
                with self._lock:
                    proc = self._procs.get(spec.name)
                if proc is None or proc.poll() is None:
                    continue
                if self._stopping.is_set():
                    return
                with self._lock:
                    self._restarts[spec.name] = \
                        self._restarts.get(spec.name, 0) + 1
                time.sleep(self.restart_delay)
                self._launch(spec)

    def pids(self) -> Dict[str, int]:
        """Live child pids by node name."""
        with self._lock:
            procs = dict(self._procs)
        return {name: proc.pid for name, proc in procs.items()
                if proc.poll() is None}

    def restarts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._restarts)

    def kill(self, name: str, sig: int = signal.SIGKILL) -> bool:
        """Signal one node (fault injection); ``True`` if delivered."""
        with self._lock:
            proc = self._procs.get(name)
        if proc is None or proc.poll() is not None:
            return False
        try:
            os.kill(proc.pid, sig)
            return True
        except OSError:
            return False

    def stop(self, timeout: float = 30.0) -> None:
        self._stopping.set()
        monitor = self._monitor
        if monitor is not None:
            monitor.join(timeout=5.0)
        with self._lock:
            procs = dict(self._procs)
        for proc in procs.values():
            if proc.poll() is None:
                try:
                    proc.terminate()
                except OSError:
                    pass
        deadline = time.monotonic() + timeout
        for proc in procs.values():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                try:
                    proc.kill()
                    proc.wait(timeout=5.0)
                except (OSError, subprocess.TimeoutExpired):
                    pass
        with self._lock:
            logs = dict(self._logs)
            self._logs.clear()
        for log in logs.values():
            try:
                log.close()
            except Exception:
                pass
