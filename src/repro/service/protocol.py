"""Wire protocol of the compile gateway: newline-delimited JSON frames.

Every frame — request or response — is one JSON object on one line
(``\\n``-terminated, UTF-8).  The framing layer here is transport-free:
pure encode/parse functions the asyncio gateway, the CLI client, the
benchmark, and raw-socket tests all share.

Requests (client → server)::

    {"op": "compile", "id": "r1", "spec": {...}, "want": "metrics"}
    {"op": "cancel",  "id": "r1"}
    {"op": "stats",   "id": "s1"}
    {"op": "ping",    "id": "p1"}
    {"op": "shutdown","id": "x1"}      # honored only with --allow-shutdown

``spec`` uses the ``compile-batch`` job-spec schema
(:mod:`repro.service.batch`).  ``want`` selects the response payload:
``"metrics"`` (default — paper gate counts only, small frames),
``"artifact"`` (full versioned artifact document), or ``"ack"``
(fingerprint only).  ``id`` is an arbitrary client-chosen string, unique
per connection; responses echo it, which is what permits streaming —
results arrive *as they complete*, not in request order.

Responses (server → client)::

    {"op": "hello", "proto": 1, "server": "..."}          # once, on connect
    {"op": "compile", "id": "r1", "ok": true,
     "fingerprint": "...", "cached": true,
     "queued_ms": 0.0, "compile_ms": 1.2, "metrics": {...}}
    {"op": "compile", "id": "r2", "ok": false,
     "code": "overloaded", "error": "..."}

Error codes are the ``E_*`` constants below.  A malformed line gets an
``ok: false`` / ``bad-frame`` response with ``id: null`` and the
connection stays open (line framing survives bad payloads); only an
oversized frame closes the connection, since the byte stream can no
longer be trusted to resynchronize.

Speculative compilation (``--speculate``) adds one field and one
server-push verb.  A compile request may set ``"want_upgrade": true``;
its compile response then carries ``"tier"`` (``"opt1"`` when the
answer came from the fast speculative pass, ``"full"`` otherwise), and
when the background opt-3 recompile lands, the server pushes one extra
frame on the same connection::

    {"op": "upgrade", "id": "r1", "ok": true, "fingerprint": "...",
     "tier": "full", "upgrade_ms": 12.5}

Upgrade frames are strictly opt-in: without ``want_upgrade`` a client
never receives one (pipelined clients match any frame bearing a known
id to its request, so an unsolicited trailing frame would corrupt their
accounting).  An upgrade that never lands (CAS lost, cancelled, or
dropped) pushes ``ok: false`` with the reason in ``"state"``.  The
``stats`` payload grows a reconciling ``"speculative"`` section:
``spec_enqueued == spec_upgraded + spec_stale + spec_cancelled +
spec_dropped``.

Cluster extensions (:mod:`repro.service.cluster`) reuse the same frames:
a router speaks this exact protocol to clients (hello ``server`` is
``"repro-cluster"``) and to each gateway node.  Three additions:

* ``compile`` requests may carry an optional ``"tenant"`` string, which
  the router uses for multi-tenant quota accounting (single gateways
  accept and ignore it);
* ``E_UNAVAILABLE`` rejects a request whose shard has no healthy owner
  (every node dead / unreachable) — a clean refusal, never a hang;
* the router's ``stats`` response nests reconciling sections:
  ``{"router": {...}, "nodes": {name: {...}}, "cluster": {...}}``, where
  ``router`` is the router's own ``GatewayMetrics`` snapshot (same
  received == sum(outcomes) ledger as a node), ``nodes`` maps each node
  name to its health plus its own ``stats`` payload, and ``cluster``
  sums the per-node request/cache counters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "E_BAD_FRAME",
    "E_BAD_REQUEST",
    "E_BAD_SPEC",
    "E_OVERLOADED",
    "E_COMPILE",
    "E_CANCELLED",
    "E_SHUTTING_DOWN",
    "E_UNSUPPORTED",
    "E_UNAVAILABLE",
    "WANT_CHOICES",
    "ProtocolError",
    "Request",
    "encode_frame",
    "decode_frame",
    "parse_request",
    "hello_frame",
    "error_frame",
]

PROTOCOL_VERSION = 1

#: Hard per-line ceiling on both sides; a paper-scale artifact response is
#: a few MB, so this leaves generous headroom without letting one rogue
#: frame balloon the peer's buffer.
MAX_FRAME_BYTES = 32 * 1024 * 1024

E_BAD_FRAME = "bad-frame"          # not JSON / not an object / too large
E_BAD_REQUEST = "bad-request"      # JSON object, but not a valid request
E_BAD_SPEC = "bad-spec"            # compile spec failed to resolve
E_OVERLOADED = "overloaded"        # admission control rejected the job
E_COMPILE = "compile-error"        # the compilation itself raised
E_CANCELLED = "cancelled"          # cancelled by the client or a disconnect
E_SHUTTING_DOWN = "shutting-down"  # server is draining
E_UNSUPPORTED = "unsupported"      # unknown op / disabled verb
E_UNAVAILABLE = "unavailable"      # cluster: no healthy node owns the shard

WANT_CHOICES = ("metrics", "artifact", "ack")

_OPS = ("compile", "cancel", "stats", "ping", "shutdown")


class ProtocolError(ValueError):
    """A frame that cannot be honored; carries the error code to answer
    with."""

    def __init__(self, code: str, message: str,
                 request_id: Optional[str] = None):
        super().__init__(message)
        self.code = code
        self.request_id = request_id


@dataclass
class Request:
    """One parsed, validated request frame."""

    op: str
    id: Optional[str] = None
    spec: Optional[Dict] = None
    want: str = "metrics"
    #: Optional multi-tenant identity on compile requests; the cluster
    #: router quotas by it, single gateways ignore it.
    tenant: Optional[str] = None
    #: Compile requests only: subscribe to the ``upgrade`` push frame of
    #: the speculative lane.  Ignored when the server runs without
    #: ``--speculate``.
    want_upgrade: bool = False
    raw: Dict = field(default_factory=dict)


def encode_frame(payload: Dict) -> bytes:
    """One JSON object as one ``\\n``-terminated line."""
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def decode_frame(line: Union[bytes, str]) -> Dict:
    """Parse one line into a JSON object; :class:`ProtocolError` on junk."""
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(E_BAD_FRAME, "frame exceeds size limit")
        try:
            line = line.decode()
        except UnicodeDecodeError as exc:
            raise ProtocolError(E_BAD_FRAME, f"frame is not UTF-8: {exc}")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(E_BAD_FRAME, f"frame is not JSON: {exc}")
    if not isinstance(payload, dict):
        raise ProtocolError(E_BAD_FRAME, "frame must be a JSON object")
    return payload


def parse_request(line: Union[bytes, str, Dict]) -> Request:
    """Validate a request frame into a :class:`Request`.

    Raises :class:`ProtocolError` carrying the code (and the request id
    when one could be salvaged, so the error response still correlates).
    """
    payload = line if isinstance(line, dict) else decode_frame(line)
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ProtocolError(E_BAD_REQUEST, "'id' must be a string or int")
    request_id = None if request_id is None else str(request_id)

    op = payload.get("op")
    if op not in _OPS:
        raise ProtocolError(
            E_BAD_REQUEST, f"unknown op {op!r}; expected one of {_OPS}",
            request_id,
        )
    if op in ("compile", "cancel") and request_id is None:
        raise ProtocolError(E_BAD_REQUEST, f"{op!r} requires an 'id'")

    spec = None
    want = "metrics"
    tenant = None
    want_upgrade = False
    if op == "compile":
        spec = payload.get("spec")
        if not isinstance(spec, dict):
            raise ProtocolError(
                E_BAD_REQUEST, "'compile' requires an object 'spec'",
                request_id,
            )
        want = payload.get("want", "metrics")
        if want not in WANT_CHOICES:
            raise ProtocolError(
                E_BAD_REQUEST,
                f"unknown want {want!r}; expected one of {WANT_CHOICES}",
                request_id,
            )
        tenant = payload.get("tenant")
        if tenant is not None and not isinstance(tenant, str):
            raise ProtocolError(
                E_BAD_REQUEST, "'tenant' must be a string", request_id)
        want_upgrade = payload.get("want_upgrade", False)
        if not isinstance(want_upgrade, bool):
            raise ProtocolError(
                E_BAD_REQUEST, "'want_upgrade' must be a boolean",
                request_id)
    return Request(op=op, id=request_id, spec=spec, want=want,
                   tenant=tenant, want_upgrade=want_upgrade, raw=payload)


def hello_frame(server: str = "repro-gateway") -> Dict:
    return {"op": "hello", "proto": PROTOCOL_VERSION, "server": server}


def error_frame(op: Optional[str], request_id: Optional[str], code: str,
                message: str) -> Dict:
    frame = {"op": op or "error", "id": request_id, "ok": False,
             "code": code, "error": message}
    return frame
