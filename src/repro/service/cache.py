"""Content-addressed compile cache: disk store + in-process LRU front.

Artifacts are keyed by the hex fingerprint of their compilation
(:mod:`repro.service.fingerprint`) and stored as JSON text.  Two tiers:

* an in-process LRU dict bounded by ``memory_entries`` (hot keys answer
  without touching the filesystem);
* an optional on-disk store laid out git-style — ``root/ab/cdef...json``,
  the first byte of the fingerprint as a fan-out directory — written via
  temp-file + :func:`os.replace` so concurrent writers (batch workers
  sharing a store, or several processes on one machine) can never expose a
  torn artifact.  Writes are idempotent: content-addressing means any two
  writers of one key write identical bytes.

Every lookup outcome is counted (:class:`CacheStats`); the CLI's
``compile-batch`` summary and the serving benchmark read these.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Union

__all__ = ["CacheStats", "CompileCache"]


def _tmp_writer_pid(name: str) -> Optional[int]:
    """Writer pid embedded in a ``pub-<pid>-*.tmp`` name, else ``None``."""
    if not name.startswith("pub-"):
        return None
    head = name[4:].split("-", 1)[0]
    return int(head) if head.isdigit() else None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True   # alive, owned by someone else
    except OSError:
        return False
    return True


@dataclass
class CacheStats:
    """Counters for one :class:`CompileCache` instance's lifetime.

    Increments go through :meth:`add` under an internal lock, so several
    threads (gateway handlers, batch mergers) sharing one cache can never
    lose or double-count an update; :meth:`absorb` folds another
    instance's counters in (used to account worker-process stores back
    into the store they share or report against).
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    merged: int = 0
    discards: int = 0
    #: Disk hits served by pulling the artifact through from a peer's
    #: store (cluster replication); every ``pulled`` is also counted in
    #: ``disk_hits``, so the hits/misses/lookups ledger is unchanged.
    pulled: int = 0
    #: Tiered publishes (:meth:`CompileCache.put_tiered` /
    #: :meth:`CompileCache.upgrade`) that replaced a same-fingerprint
    #: lower-tier entry in place.
    upgraded: int = 0
    #: Tiered publishes refused because an equal-or-better artifact was
    #: already stored (the compare-and-swap lost).  Every tiered publish
    #: lands in exactly one of ``puts`` / ``upgraded`` /
    #: ``stale_upgrades``, so the write ledger stays reconciling.
    stale_upgrades: int = 0

    def __post_init__(self):
        self._lock = threading.Lock()

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def add(self, **deltas: int) -> None:
        """Atomically add ``field=delta`` counter increments."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def absorb(self, other: Union["CacheStats", Dict[str, int]]) -> None:
        """Fold another stats object's counters into this one.

        ``other`` may be a :class:`CacheStats` or a plain counter dict
        (e.g. a worker process's :meth:`snapshot` shipped over a pipe);
        unknown keys — including the derived ``hits``/``lookups`` of
        :meth:`as_dict` — are ignored.
        """
        if isinstance(other, CacheStats):
            other = other.snapshot()
        names = {f.name for f in fields(self)}
        self.add(**{k: v for k, v in other.items() if k in names})

    def snapshot(self) -> Dict[str, int]:
        """Plain counter dict (no derived fields), read atomically."""
        with self._lock:
            return {f.name: getattr(self, f.name) for f in fields(self)}

    def as_dict(self) -> Dict[str, int]:
        out = self.snapshot()
        out["hits"] = out["memory_hits"] + out["disk_hits"]
        out["lookups"] = out["hits"] + out["misses"]
        return out


class CompileCache:
    """Two-tier content-addressed artifact store.

    Parameters
    ----------
    root:
        Directory of the on-disk store; created on first write.  ``None``
        makes the cache memory-only (useful in tests and one-shot runs).
    memory_entries:
        LRU capacity of the in-process front; least-recently-used entries
        spill out of memory but stay on disk.
    peer_roots:
        Replica set for pull-through: other content-addressed stores
        (cluster peers) probed — in order, up to ``replica_probes`` of
        them — when the local disk tier misses.  A peer hit is published
        into the local store via the exclusive-link path (so racing
        pullers of one key count one publish) and counted as
        ``disk_hits`` + ``pulled``.  Content addressing makes any peer's
        bytes for a key identical to ours, and peers publish atomically,
        so a probe can never observe a torn artifact.
    replica_probes:
        Cap on how many peers one miss consults (default: all of them).
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 memory_entries: int = 256,
                 peer_roots: Iterable[os.PathLike] = (),
                 replica_probes: Optional[int] = None):
        if memory_entries < 1:
            raise ValueError("memory_entries must be positive")
        self.root = Path(root) if root is not None else None
        self.memory_entries = int(memory_entries)
        self.peer_roots = tuple(Path(p) for p in peer_roots)
        self.replica_probes = (
            len(self.peer_roots) if replica_probes is None
            else max(0, int(replica_probes))
        )
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, str]" = OrderedDict()
        self._lock = threading.Lock()
        #: Serializes *mutations* of the disk tier (put/adopt/discard and
        #: the tiered compare-and-swap) within this process, so a discard
        #: can never unlink bytes a concurrent publisher just wrote and an
        #: upgrade's read-compare-write is atomic.  Separate from
        #: ``_lock`` so MB-sized artifact writes never stall the memory
        #: front's hit path.  Reads stay lock-free (publishes are atomic
        #: renames).  Lock order where both are held: ``_disk_lock``
        #: outside, ``_lock`` inside.
        self._disk_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Key layout
    # ------------------------------------------------------------------
    def _path(self, fingerprint: str) -> Path:
        assert self.root is not None
        return self._key_path(self.root, fingerprint)

    @staticmethod
    def _key_path(root: Path, fingerprint: str) -> Path:
        return root / fingerprint[:2] / f"{fingerprint[2:]}.json"

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[str]:
        """Artifact text for ``fingerprint``, or ``None`` on a miss.

        A disk hit is promoted into the memory front.  Split into the
        two tier probes below so the async gateway can answer memory
        hits inline and push the filesystem probe onto its executor;
        ``get_memory() or get_disk()`` counts exactly what one ``get``
        would (a memory probe alone never records a miss).
        """
        text = self.get_memory(fingerprint)
        if text is not None:
            return text
        return self.get_disk(fingerprint)

    def get_memory(self, fingerprint: str) -> Optional[str]:
        """Memory-front probe: no filesystem access, safe on the event
        loop.  Counts a hit when it answers; never counts a miss — the
        lookup is not over until :meth:`get_disk` also misses."""
        with self._lock:
            text = self._memory.get(fingerprint)
            if text is not None:
                self._memory.move_to_end(fingerprint)
                self.stats.add(memory_hits=1)
                return text
        return None

    def get_disk(self, fingerprint: str) -> Optional[str]:
        """Disk-tier probe (blocking): read, promote into memory, and
        count the lookup's outcome (``disk_hits`` or ``misses``).

        A local miss with ``peer_roots`` configured falls through to
        :meth:`pull_through` before it is allowed to count as a miss."""
        if self.root is not None:
            try:
                text = self._path(fingerprint).read_text()
            except (FileNotFoundError, NotADirectoryError):
                text = None
            if text is not None:
                with self._lock:
                    self.stats.add(disk_hits=1)
                    self._remember(fingerprint, text)
                return text
        if self.peer_roots:
            text = self.pull_through(fingerprint)
            if text is not None:
                return text
        self.stats.add(misses=1)
        return None

    def pull_through(self, fingerprint: str) -> Optional[str]:
        """Probe up to ``replica_probes`` peer stores for the key and
        replicate the *highest-tier* hit into this store (blocking).

        Returns the artifact text, counted as ``disk_hits`` + ``pulled``,
        or ``None`` when no consulted replica holds it (nothing is
        counted — the caller owns the miss).  When replicas disagree on
        quality (one holds a speculative opt-1 placeholder, another the
        full artifact) the best tier wins; the probe stops early once a
        full-tier copy is found, since nothing can rank higher.  The
        local publish uses the exclusive link so two nodes pulling one
        key into one store never double-write, and a memory-only cache
        simply adopts the bytes into its LRU front.
        """
        # Deferred import: keep the cache importable without the artifact
        # codec's circuit stack (the contention battery's subprocess
        # script imports this module alone).
        from .artifact import TIER_FULL, artifact_tier, tier_rank

        best: Optional[str] = None
        best_rank = -2
        for peer in self.peer_roots[:self.replica_probes]:
            try:
                text = self._key_path(peer, fingerprint).read_text()
            except (FileNotFoundError, NotADirectoryError):
                continue
            except OSError:
                continue   # peer store unreadable: treat as a miss there
            rank = tier_rank(artifact_tier(text))
            if rank > best_rank:
                best, best_rank = text, rank
            if best_rank >= tier_rank(TIER_FULL):
                break      # nothing ranks higher: stop probing
        if best is None:
            return None
        if self.root is not None:
            with self._disk_lock:
                self._write_disk(fingerprint, best, exclusive=True)
        with self._lock:
            self.stats.add(disk_hits=1, pulled=1)
            self._remember(fingerprint, best)
        return best

    def put(self, fingerprint: str, text: str) -> None:
        """Store artifact text under ``fingerprint`` in both tiers.

        Full-effort publish: last writer wins, which is safe because
        content addressing makes racing full-tier writers byte-identical
        and nothing ranks above full.  Lower-tier writers must go
        through :meth:`put_tiered` instead.
        """
        if self.root is not None:
            with self._disk_lock:
                self._write_disk(fingerprint, text)
        with self._lock:
            self.stats.add(puts=1)
            self._remember(fingerprint, text)

    def adopt(self, fingerprint: str, text: str) -> None:
        """Like :meth:`put`, but skips the disk write when the key is
        already stored — content-addressing makes any existing bytes
        identical.  Used by the batch service to promote just-merged
        artifacts into the memory front without rewriting them.

        Publishes through the exclusive link (no exists()-then-write
        window), so N racing adopters of one key perform one disk write
        and count exactly one ``put`` between them.
        """
        created = False
        if self.root is not None:
            with self._disk_lock:
                created = self._write_disk(fingerprint, text, exclusive=True)
        with self._lock:
            if self.root is None:
                created = fingerprint not in self._memory
            if created:
                self.stats.add(puts=1)
            self._remember(fingerprint, text)

    def promote(self, fingerprint: str, text: str) -> None:
        """Insert into the memory front only — no disk IO, no put counted.

        For artifacts that already live in the shared disk store because a
        worker process wrote them there (shared-store mode): the write was
        counted by the worker, the parent just wants the hot key resident.
        """
        with self._lock:
            self._remember(fingerprint, text)

    def discard(self, fingerprint: str,
                expect: Optional[str] = None) -> bool:
        """Drop one artifact from both tiers; ``True`` if anything was
        removed.  Concurrent readers either see the old bytes or a miss —
        never a partial file (removal is a single ``unlink``).

        ``expect`` makes the removal conditional (compare-and-discard):
        the entry is only dropped if its current bytes equal ``expect``,
        so an invalidation raced by a concurrent :meth:`put` /
        :meth:`pull_through` republish leaves the fresh artifact alone.
        The whole read-compare-unlink runs under the disk mutation lock
        and the ``discards`` counter is bumped inside it — an unlink can
        no longer land between a publisher's write and its counting, and
        the counter can never exceed the number of entries actually
        removed.
        """
        with self._disk_lock:
            removed = False
            if self.root is not None:
                path = self._path(fingerprint)
                try:
                    current: Optional[str] = path.read_text()
                except (FileNotFoundError, NotADirectoryError):
                    current = None
                if current is not None and (expect is None or current == expect):
                    try:
                        os.unlink(path)
                        removed = True
                    except (FileNotFoundError, NotADirectoryError):
                        pass
            with self._lock:
                held = self._memory.get(fingerprint)
                if held is not None and (expect is None or held == expect):
                    self._memory.pop(fingerprint, None)
                    removed = True
                if removed:
                    self.stats.add(discards=1)
        return removed

    def put_tiered(self, fingerprint: str, text: str, tier: str) -> bool:
        """Publish a tiered artifact unless an equal-or-better one is
        already stored.  ``True`` if ``text`` is now the stored entry.

        This is the speculative fast path's store: an opt-1 placeholder
        must never clobber a full artifact another writer landed first.
        Counted as ``puts`` when the key was empty, ``upgraded`` when a
        lower tier was replaced, ``stale_upgrades`` when the CAS lost.
        """
        return self._publish_tiered(fingerprint, text, tier,
                                    fresh_counter="puts")

    def upgrade(self, fingerprint: str, text: str,
                tier: str = "full") -> bool:
        """Compare-and-swap upgrade: replace a same-fingerprint entry of
        *strictly lower* tier with ``text``, in place.

        ``True`` when the upgrade landed (counted as ``upgraded``);
        ``False`` when an equal-or-better artifact was already stored —
        e.g. a concurrent cold compile at full effort beat the background
        lane to the key — counted as ``stale_upgrades`` and the existing
        entry is left untouched.  An upgrade of an *empty* key also
        lands (counted ``upgraded``): the entry it raced was discarded,
        and the full artifact is still worth keeping.
        """
        return self._publish_tiered(fingerprint, text, tier,
                                    fresh_counter="upgraded")

    def _publish_tiered(self, fingerprint: str, text: str, tier: str,
                        fresh_counter: str) -> bool:
        """Rank-checked publish shared by :meth:`put_tiered` /
        :meth:`upgrade`; ``fresh_counter`` names the stat bumped when the
        key was empty."""
        from .artifact import artifact_tier, tier_rank
        with self._disk_lock:
            current = self._read_current(fingerprint)
            if current is not None and (
                    tier_rank(artifact_tier(current)) >= tier_rank(tier)):
                with self._lock:
                    self.stats.add(stale_upgrades=1)
                    self._remember(fingerprint, current)
                return False
            if self.root is not None:
                self._write_disk(fingerprint, text)
            with self._lock:
                if current is None:
                    self.stats.add(**{fresh_counter: 1})
                else:
                    self.stats.add(upgraded=1)
                self._remember(fingerprint, text)
        return True

    def _read_current(self, fingerprint: str) -> Optional[str]:
        """Current stored bytes for the key, disk tier authoritative.
        Caller holds ``_disk_lock`` (this is the CAS read)."""
        if self.root is not None:
            try:
                return self._path(fingerprint).read_text()
            except (FileNotFoundError, NotADirectoryError):
                return None
        with self._lock:
            return self._memory.get(fingerprint)

    def _remember(self, fingerprint: str, text: str) -> None:
        """Insert into the LRU front, evicting beyond capacity.  Caller
        holds the lock."""
        self._memory[fingerprint] = text  # lint: caller-holds-lock
        self._memory.move_to_end(fingerprint)
        evicted = 0
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            evicted += 1
        if evicted:
            self.stats.add(evictions=evicted)

    def _write_disk(self, fingerprint: str, text: str,
                    exclusive: bool = False) -> bool:
        """Atomically publish ``text`` under the key's path.

        ``exclusive=True`` publishes via ``link`` (fails on an existing
        key instead of rewriting it) and returns whether *this* call
        created the entry — the primitive that makes concurrent merge
        counts exact: two racing mergers of one key get one ``True``.
        """
        path = self._path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        # The pid in the temp name lets sweep_stale_tmp tell a live
        # writer's in-flight publish from a dead one's orphan.
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f"pub-{os.getpid()}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            if exclusive:
                try:
                    os.link(tmp, path)
                    created = True
                except FileExistsError:
                    created = False
                os.unlink(tmp)
                return created
            os.replace(tmp, path)
            return True
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._memory:
                return True
        return self.root is not None and self._path(fingerprint).exists()

    def __len__(self) -> int:
        """Number of artifacts in the store (disk when present, else memory)."""
        if self.root is None:
            with self._lock:
                return len(self._memory)
        return sum(1 for _ in self.iter_fingerprints())

    def iter_fingerprints(self) -> Iterator[str]:
        """All fingerprints in the disk store (memory-only: the LRU keys)."""
        if self.root is None:
            with self._lock:
                yield from list(self._memory)
            return
        if not self.root.is_dir():
            return
        for fanout in sorted(self.root.iterdir()):
            if not fanout.is_dir() or len(fanout.name) != 2:
                continue
            for entry in sorted(fanout.iterdir()):
                if entry.suffix == ".json":
                    yield fanout.name + entry.stem

    def clear_memory(self) -> None:
        """Drop the LRU front (the disk store is untouched)."""
        with self._lock:
            self._memory.clear()

    def sweep_stale_tmp(self, max_age_seconds: float = 300.0) -> int:
        """Remove orphaned ``.tmp`` files left by writers that died between
        ``mkstemp`` and the atomic publish (e.g. a SIGKILLed worker).

        Such files are invisible to readers — this is purely disk hygiene.
        Temp names embed the writer's pid (``pub-<pid>-*.tmp``): a file
        whose writer is still alive is *never* touched, whatever its age
        (several daemons may share one store), a dead writer's file goes
        immediately, and unattributable files fall back to the
        ``max_age_seconds`` rule.  Returns the number removed.
        """
        if self.root is None or not self.root.is_dir():
            return 0
        cutoff = time.time() - max_age_seconds
        removed = 0
        for tmp in self.root.rglob("*.tmp"):
            writer = _tmp_writer_pid(tmp.name)
            if writer is not None:
                if _pid_alive(writer):
                    continue
            else:
                try:
                    if tmp.stat().st_mtime > cutoff:
                        continue
                except OSError:
                    continue
            try:
                tmp.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def merge_from(self, other_root: os.PathLike) -> int:
        """Adopt every artifact of another on-disk store not already held.

        Used to fold batch workers' private stores back into the shared
        one; returns the number of artifacts copied.  Exact under
        contention: the copy publishes with an exclusive link, so two
        processes merging the same key into one store count one copy
        between them, and a source entry deleted mid-merge is skipped
        rather than half-copied.
        """
        if self.root is None:
            raise ValueError("cannot merge into a memory-only cache")
        other = CompileCache(other_root, memory_entries=1)
        copied = 0
        for fingerprint in other.iter_fingerprints():
            path = self._path(fingerprint)
            if path.exists():
                continue
            try:
                text = other._path(fingerprint).read_text()
            except (FileNotFoundError, NotADirectoryError):
                continue
            with self._disk_lock:
                created = self._write_disk(fingerprint, text, exclusive=True)
            if created:
                copied += 1
        if copied:
            self.stats.add(merged=copied)
        return copied
