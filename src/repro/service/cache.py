"""Content-addressed compile cache: disk store + in-process LRU front.

Artifacts are keyed by the hex fingerprint of their compilation
(:mod:`repro.service.fingerprint`) and stored as JSON text.  Two tiers:

* an in-process LRU dict bounded by ``memory_entries`` (hot keys answer
  without touching the filesystem);
* an optional on-disk store laid out git-style — ``root/ab/cdef...json``,
  the first byte of the fingerprint as a fan-out directory — written via
  temp-file + :func:`os.replace` so concurrent writers (batch workers
  sharing a store, or several processes on one machine) can never expose a
  torn artifact.  Writes are idempotent: content-addressing means any two
  writers of one key write identical bytes.

Every lookup outcome is counted (:class:`CacheStats`); the CLI's
``compile-batch`` summary and the serving benchmark read these.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional

__all__ = ["CacheStats", "CompileCache"]


@dataclass
class CacheStats:
    """Counters for one :class:`CompileCache` instance's lifetime."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    merged: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        out = asdict(self)
        out["hits"] = self.hits
        out["lookups"] = self.lookups
        return out


class CompileCache:
    """Two-tier content-addressed artifact store.

    Parameters
    ----------
    root:
        Directory of the on-disk store; created on first write.  ``None``
        makes the cache memory-only (useful in tests and one-shot runs).
    memory_entries:
        LRU capacity of the in-process front; least-recently-used entries
        spill out of memory but stay on disk.
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 memory_entries: int = 256):
        if memory_entries < 1:
            raise ValueError("memory_entries must be positive")
        self.root = Path(root) if root is not None else None
        self.memory_entries = int(memory_entries)
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, str]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Key layout
    # ------------------------------------------------------------------
    def _path(self, fingerprint: str) -> Path:
        assert self.root is not None
        return self.root / fingerprint[:2] / f"{fingerprint[2:]}.json"

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[str]:
        """Artifact text for ``fingerprint``, or ``None`` on a miss.

        A disk hit is promoted into the memory front.
        """
        with self._lock:
            text = self._memory.get(fingerprint)
            if text is not None:
                self._memory.move_to_end(fingerprint)
                self.stats.memory_hits += 1
                return text
        if self.root is not None:
            try:
                text = self._path(fingerprint).read_text()
            except (FileNotFoundError, NotADirectoryError):
                text = None
            if text is not None:
                with self._lock:
                    self.stats.disk_hits += 1
                    self._remember(fingerprint, text)
                return text
        with self._lock:
            self.stats.misses += 1
        return None

    def put(self, fingerprint: str, text: str) -> None:
        """Store artifact text under ``fingerprint`` in both tiers."""
        if self.root is not None:
            self._write_disk(fingerprint, text)
        with self._lock:
            self.stats.puts += 1
            self._remember(fingerprint, text)

    def adopt(self, fingerprint: str, text: str) -> None:
        """Like :meth:`put`, but skips the disk write when the key is
        already stored — content-addressing makes any existing bytes
        identical.  Used by the batch service to promote just-merged
        artifacts into the memory front without rewriting them."""
        if self.root is not None and not self._path(fingerprint).exists():
            self._write_disk(fingerprint, text)
        with self._lock:
            self.stats.puts += 1
            self._remember(fingerprint, text)

    def _remember(self, fingerprint: str, text: str) -> None:
        """Insert into the LRU front, evicting beyond capacity.  Caller
        holds the lock."""
        self._memory[fingerprint] = text
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _write_disk(self, fingerprint: str, text: str) -> None:
        path = self._path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._memory:
                return True
        return self.root is not None and self._path(fingerprint).exists()

    def __len__(self) -> int:
        """Number of artifacts in the store (disk when present, else memory)."""
        if self.root is None:
            with self._lock:
                return len(self._memory)
        return sum(1 for _ in self.iter_fingerprints())

    def iter_fingerprints(self) -> Iterator[str]:
        """All fingerprints in the disk store (memory-only: the LRU keys)."""
        if self.root is None:
            with self._lock:
                yield from list(self._memory)
            return
        if not self.root.is_dir():
            return
        for fanout in sorted(self.root.iterdir()):
            if not fanout.is_dir() or len(fanout.name) != 2:
                continue
            for entry in sorted(fanout.iterdir()):
                if entry.suffix == ".json":
                    yield fanout.name + entry.stem

    def clear_memory(self) -> None:
        """Drop the LRU front (the disk store is untouched)."""
        with self._lock:
            self._memory.clear()

    def merge_from(self, other_root: os.PathLike) -> int:
        """Adopt every artifact of another on-disk store not already held.

        Used to fold batch workers' private stores back into the shared
        one; returns the number of artifacts copied.
        """
        if self.root is None:
            raise ValueError("cannot merge into a memory-only cache")
        other = CompileCache(other_root, memory_entries=1)
        copied = 0
        for fingerprint in other.iter_fingerprints():
            path = self._path(fingerprint)
            if path.exists():
                continue
            text = other._path(fingerprint).read_text()
            self._write_disk(fingerprint, text)
            copied += 1
        self.stats.merged += copied
        return copied
