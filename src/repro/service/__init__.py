"""Serving layer: content-addressed compile caching, batch compilation,
and the async compile gateway.

A deterministic compiler front that identifies every compilation by a
content fingerprint, stores artifacts in a two-tier content-addressed
cache, shards batch traffic across worker processes with fingerprint
dedupe, and — through :mod:`repro.service.gateway` — serves all of it as
a long-running admission-controlled streaming daemon.
"""

from .artifact import (
    ARTIFACT_VERSION,
    OLDEST_SUPPORTED_VERSION,
    TIER_FAST,
    TIER_FULL,
    artifact_tier,
    circuit_from_dict,
    circuit_to_dict,
    dumps_artifact,
    loads_artifact,
    program_from_dict,
    program_to_dict,
    result_from_dict,
    result_to_dict,
    tier_rank,
)
from .batch import BatchEntry, BatchResult, compile_batch, resolve_spec
from .cache import CacheStats, CompileCache
from .cluster import (
    ClusterConfig,
    ClusterRouter,
    ClusterSupervisor,
    HashRing,
    NodeSpec,
    plan_cluster,
)
from .fingerprint import (
    FINGERPRINT_VERSION,
    canonical_options,
    compile_fingerprint,
    program_fingerprint,
)
from .gateway import CompileGateway, GatewayClient, GatewayConfig, prepare_unix_path
from .metrics import GatewayMetrics, LatencyReservoir
from .protocol import PROTOCOL_VERSION, ProtocolError, parse_request

__all__ = [
    "ARTIFACT_VERSION",
    "FINGERPRINT_VERSION",
    "OLDEST_SUPPORTED_VERSION",
    "PROTOCOL_VERSION",
    "TIER_FAST",
    "TIER_FULL",
    "artifact_tier",
    "tier_rank",
    "BatchEntry",
    "BatchResult",
    "CacheStats",
    "ClusterConfig",
    "ClusterRouter",
    "ClusterSupervisor",
    "CompileCache",
    "CompileGateway",
    "HashRing",
    "NodeSpec",
    "plan_cluster",
    "GatewayClient",
    "GatewayConfig",
    "GatewayMetrics",
    "LatencyReservoir",
    "ProtocolError",
    "parse_request",
    "prepare_unix_path",
    "canonical_options",
    "circuit_from_dict",
    "circuit_to_dict",
    "compile_batch",
    "compile_fingerprint",
    "dumps_artifact",
    "loads_artifact",
    "program_fingerprint",
    "program_from_dict",
    "program_to_dict",
    "resolve_spec",
    "result_from_dict",
    "result_to_dict",
]
