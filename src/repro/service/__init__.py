"""Serving layer: content-addressed compile caching and batch compilation.

The fourth architectural layer (above IR, scheduling, and synthesis): a
deterministic compiler front that identifies every compilation by a content
fingerprint, stores artifacts in a two-tier content-addressed cache, and
shards batch traffic across worker processes with fingerprint dedupe.
"""

from .artifact import (
    ARTIFACT_VERSION,
    circuit_from_dict,
    circuit_to_dict,
    dumps_artifact,
    loads_artifact,
    program_from_dict,
    program_to_dict,
    result_from_dict,
    result_to_dict,
)
from .batch import BatchEntry, BatchResult, compile_batch, resolve_spec
from .cache import CacheStats, CompileCache
from .fingerprint import (
    FINGERPRINT_VERSION,
    canonical_options,
    compile_fingerprint,
    program_fingerprint,
)

__all__ = [
    "ARTIFACT_VERSION",
    "FINGERPRINT_VERSION",
    "BatchEntry",
    "BatchResult",
    "CacheStats",
    "CompileCache",
    "canonical_options",
    "circuit_from_dict",
    "circuit_to_dict",
    "compile_batch",
    "compile_fingerprint",
    "dumps_artifact",
    "loads_artifact",
    "program_fingerprint",
    "program_from_dict",
    "program_to_dict",
    "resolve_spec",
    "result_from_dict",
    "result_to_dict",
]
