"""Versioned JSON artifacts for compilation inputs and outputs.

The serving layer stores one compact JSON document per compilation.  A
circuit serializes as its :class:`~repro.circuit.tape.GateTape` columns
(opcode names are written symbolically so artifacts survive opcode-table
renumbering), and deserializes by adopting the columns straight back onto a
tape — the round trip is *byte-identical*: re-serializing a loaded artifact
reproduces the original document, and the loaded tape's columns equal the
source tape's live rows.  Python's ``json`` emits floats via ``repr``,
which round-trips IEEE-754 doubles exactly, so angles and coefficients
survive untouched.

Documents carry an explicit ``version``; loading rejects unknown versions
rather than guessing.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..circuit import QuantumCircuit
from ..circuit.gates import OP, OPCODES
from ..circuit.tape import NO_SLOT, GateTape
from ..core.compiler import CompilationResult
from ..ir import PauliBlock, PauliProgram, WeightedString
from ..pauli import PauliString
from ..transpile import Layout

__all__ = [
    "ARTIFACT_VERSION",
    "OLDEST_SUPPORTED_VERSION",
    "TIER_FULL",
    "TIER_FAST",
    "tier_rank",
    "artifact_tier",
    "circuit_to_dict",
    "circuit_from_dict",
    "result_to_dict",
    "result_from_dict",
    "program_to_dict",
    "program_from_dict",
    "dumps_artifact",
    "loads_artifact",
]

#: v2 added the target ``device`` name (noise-aware compile path); v3
#: adds the quality ``tier`` and ``pipeline`` provenance (tiered /
#: speculative compilation).  All three versions stay decodable: the
#: added fields default (tier ``"full"``, pipeline/device ``None``), so
#: a v1 or v2 artifact reads as a full-effort result — which it is.
ARTIFACT_VERSION = 3

#: The true decode floor.  Every decode path that does not pass an
#: explicit ``oldest`` gets this, not ``ARTIFACT_VERSION`` — defaulting
#: to the current version silently rejected still-supported payloads
#: whenever a caller forgot the argument.
OLDEST_SUPPORTED_VERSION = 1

#: Artifact quality tiers.  ``full`` is the complete pipeline (all
#: peephole rules to fixpoint, all placement restarts); ``opt1`` is the
#: speculative fast tier (cancel+merge only, single placement attempt).
#: The tier is *execution effort*, never cache identity: an opt-1 and a
#: full artifact for the same (program, options) share one fingerprint,
#: and the cache upgrades the entry in place.
TIER_FULL = "full"
TIER_FAST = "opt1"

#: Tier → quality rank for the cache's compare-and-swap upgrade path.
#: Unknown tiers rank below everything so a recognizable artifact can
#: always replace a mangled one.
_TIER_RANKS = {"opt0": 0, "opt1": 1, "opt2": 2, "opt3": 3, "full": 3}


def tier_rank(tier: Optional[str]) -> int:
    """Quality rank of a tier name; unknown/missing ranks lowest."""
    return _TIER_RANKS.get(tier, -1)


def artifact_tier(document) -> str:
    """The tier of a stored artifact (JSON text or decoded dict).

    v1/v2 artifacts carry no tier field and were compiled at full effort,
    so they report ``"full"``.  Unparseable text reports ``""`` (rank
    below every real tier) so a valid artifact may replace it.
    """
    if isinstance(document, str):
        try:
            document = json.loads(document)
        except ValueError:
            return ""
    if not isinstance(document, dict):
        return ""
    tier = document.get("tier", TIER_FULL)
    return tier if isinstance(tier, str) else ""


def _check_version(
    payload: Dict, kind: str, oldest: int = OLDEST_SUPPORTED_VERSION
) -> None:
    version = payload.get("version")
    if not isinstance(version, int) or not oldest <= version <= ARTIFACT_VERSION:
        raise ValueError(
            f"unsupported {kind} artifact version {version!r}; "
            f"this build reads versions {oldest}..{ARTIFACT_VERSION}"
        )


# ----------------------------------------------------------------------
# Circuits
# ----------------------------------------------------------------------

def circuit_to_dict(circuit: QuantumCircuit) -> Dict:
    """Columnar encoding of a circuit's live tape rows.

    The opcode column is one space-joined string of symbolic mnemonics:
    symbolic so artifacts survive opcode renumbering, and a single string
    because parsing one long JSON string is an order of magnitude cheaper
    than parsing thousands of two-character ones (this is the dominant
    cost of a warm cache hit).
    """
    tape = circuit.tape
    ops: List[str] = []
    q0: List[int] = []
    q1: List[int] = []
    param: List[float] = []
    for slot in tape.iter_slots():
        op, a, b, theta = tape.row(slot)
        ops.append(OPCODES[op])
        q0.append(a)
        q1.append(b)
        param.append(theta)
    return {
        "version": ARTIFACT_VERSION,
        "kind": "circuit",
        "num_qubits": circuit.num_qubits,
        "name": circuit.name,
        "op": " ".join(ops),
        "q0": q0,
        "q1": q1,
        "param": param,
    }


def circuit_from_dict(payload: Dict) -> QuantumCircuit:
    """Rebuild a circuit by adopting the serialized columns onto a tape."""
    _check_version(payload, "circuit", oldest=1)
    if payload.get("kind") != "circuit":
        raise ValueError(f"expected a circuit artifact, got {payload.get('kind')!r}")
    ops = [OP[name] for name in payload["op"].split()]
    # json already yields ints/floats for these columns; bounds are checked
    # in aggregate below instead of per element (this is the warm-hit path).
    q0 = payload["q0"]
    q1 = payload["q1"]
    param = [float(p) for p in payload["param"]]
    if not len(ops) == len(q0) == len(q1) == len(param):
        raise ValueError("circuit artifact columns have mismatched lengths")
    num_qubits = int(payload["num_qubits"])
    if q0 and not (0 <= min(q0) and max(q0) < num_qubits):
        raise ValueError("circuit artifact q0 operand out of range")
    if q1 and not (NO_SLOT <= min(q1) and max(q1) < num_qubits):
        raise ValueError("circuit artifact q1 operand out of range")
    tape = GateTape.from_columns(num_qubits, ops, q0, q1, param)
    return QuantumCircuit.from_tape(tape, name=payload.get("name", ""))


# ----------------------------------------------------------------------
# Layouts and terms
# ----------------------------------------------------------------------

def _layout_to_list(layout: Optional[Layout]) -> Optional[List[List[int]]]:
    if layout is None:
        return None
    return sorted(
        [layout.logical(p), p]
        for p in layout.physical_qubits()
    )


def _layout_from_list(pairs: Optional[List[List[int]]]) -> Optional[Layout]:
    if pairs is None:
        return None
    return Layout({int(l): int(p) for l, p in pairs})


def _terms_to_dict(terms) -> Dict:
    """Space-joined labels + coefficient list (fast-parse, see circuit op)."""
    return {
        "labels": " ".join(string.label for string, _ in terms),
        "coefficients": [float(coefficient) for _, coefficient in terms],
    }


def _terms_from_dict(payload: Dict) -> List:
    labels = payload["labels"].split()
    coefficients = payload["coefficients"]
    if len(labels) != len(coefficients):
        raise ValueError("emitted_terms labels/coefficients length mismatch")
    return [
        (PauliString.from_label(label), float(coefficient))
        for label, coefficient in zip(labels, coefficients)
    ]


# ----------------------------------------------------------------------
# Compilation results
# ----------------------------------------------------------------------

def result_to_dict(result: CompilationResult) -> Dict:
    return {
        "version": ARTIFACT_VERSION,
        "kind": "compilation_result",
        "backend": result.backend,
        "scheduler": result.scheduler,
        "tier": result.tier,
        "pipeline": result.pipeline,
        "circuit": circuit_to_dict(result.circuit),
        "emitted_terms": _terms_to_dict(result.emitted_terms),
        "initial_layout": _layout_to_list(result.initial_layout),
        "final_layout": _layout_to_list(result.final_layout),
        "device": result.device,
    }


def result_from_dict(payload: Dict) -> CompilationResult:
    _check_version(payload, "compilation result")
    if payload.get("kind") != "compilation_result":
        raise ValueError(
            f"expected a compilation_result artifact, got {payload.get('kind')!r}"
        )
    return CompilationResult(
        circuit=circuit_from_dict(payload["circuit"]),
        backend=payload["backend"],
        scheduler=payload["scheduler"],
        emitted_terms=_terms_from_dict(payload["emitted_terms"]),
        initial_layout=_layout_from_list(payload.get("initial_layout")),
        final_layout=_layout_from_list(payload.get("final_layout")),
        device=payload.get("device"),
        tier=payload.get("tier", TIER_FULL),
        pipeline=payload.get("pipeline"),
    )


def dumps_artifact(result: CompilationResult) -> str:
    """Compact, key-sorted JSON text of a result — the cache's stored unit.

    Key order and separators are pinned so equal results serialize to equal
    bytes (the byte-identity the cache tests assert).
    """
    return json.dumps(result_to_dict(result), sort_keys=True, separators=(",", ":"))


def loads_artifact(text: str) -> CompilationResult:
    return result_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Programs (batch transport + JSONL spec files)
# ----------------------------------------------------------------------

def program_to_dict(program: PauliProgram) -> Dict:
    """Exact JSON encoding of a program (weights survive bit-for-bit,
    unlike the human-oriented ``%g``-formatted text IR)."""
    return {
        "version": ARTIFACT_VERSION,
        "kind": "pauli_program",
        "num_qubits": program.num_qubits,
        "name": program.name,
        "blocks": [
            {
                "parameter": block.parameter,
                "name": block.name,
                "strings": [[ws.string.label, ws.weight] for ws in block],
            }
            for block in program
        ],
    }


def program_from_dict(payload: Dict) -> PauliProgram:
    _check_version(payload, "program", oldest=1)
    if payload.get("kind") != "pauli_program":
        raise ValueError(f"expected a pauli_program artifact, got {payload.get('kind')!r}")
    blocks = [
        PauliBlock(
            [
                WeightedString(PauliString.from_label(label), float(weight))
                for label, weight in block["strings"]
            ],
            parameter=float(block["parameter"]),
            name=block.get("name", ""),
        )
        for block in payload["blocks"]
    ]
    return PauliProgram(blocks, name=payload.get("name", ""))
