"""Gateway observability: counters, latency percentiles, worker throughput.

Everything here is thread-safe (the gateway's event loop, executor
callback threads, and the soak test's reconciliation all read/write
concurrently) and allocation-bounded: latencies go into fixed-size
reservoirs of the most recent samples, so a week-long soak cannot grow
memory, while total count and sum stay exact for the lifetime averages.

The counters are designed to *reconcile*: every received compile request
ends in exactly one of ``warm_hits``, ``completed``, ``failed``,
``cancelled``, ``rejected`` or ``bad_specs`` — the soak test asserts
``received == sum(outcomes)`` once the queue has drained, which is how
leaked or double-counted requests are caught.  (``bad_requests`` counts
malformed *frames*, which are answered before ``received`` is ever
incremented, so it sits outside the ledger.)
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, Optional

__all__ = ["LatencyReservoir", "GatewayMetrics"]


class LatencyReservoir:
    """Percentiles over the last ``capacity`` samples, exact count/sum
    overall."""

    def __init__(self, capacity: int = 2048):
        self._samples: "deque[float]" = deque(maxlen=capacity)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            self._count += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    def percentile(self, p: float) -> Optional[float]:
        """p in [0, 100] over the resident window; ``None`` when empty."""
        with self._lock:
            data = sorted(self._samples)
        return self._rank(data, p)

    @staticmethod
    def _rank(data, p: float) -> Optional[float]:
        if not data:
            return None
        rank = max(0, min(len(data) - 1, round(p / 100.0 * (len(data) - 1))))
        return data[rank]

    def summary(self) -> Dict:
        # One lock acquisition for the whole summary: counters and the
        # sorted window come from the same instant, so p50/p95 can never
        # describe a different sample population than `count` (three
        # separate acquisitions allowed a record() to land in between).
        with self._lock:
            count, total, peak = self._count, self._sum, self._max
            data = sorted(self._samples)
        p50, p95 = self._rank(data, 50), self._rank(data, 95)
        return {
            "count": count,
            "p50_ms": None if p50 is None else round(p50 * 1e3, 3),
            "p95_ms": None if p95 is None else round(p95 * 1e3, 3),
            "mean_ms": round(total / count * 1e3, 3) if count else None,
            "max_ms": round(peak * 1e3, 3) if count else None,
        }


#: Counter names with a fixed meaning; snapshot() reports exactly these.
_COUNTERS = (
    "connections_total",     # accepted sockets over the lifetime
    "received",              # well-formed compile requests
    "warm_hits",             # answered from the cache, never queued
    "admitted",              # cold requests that entered the queue
    "rejected",              # admission control said no (overloaded)
    "bad_requests",          # malformed frames answered with errors
    "bad_specs",             # well-formed compiles whose spec won't resolve
    "completed",             # cold compiles that streamed a result
    "failed",                # cold compiles that errored
    "cancelled",             # cancelled by verb or disconnect
    "disconnects",           # client connections torn down
    "worker_restarts",       # process pool rebuilt after a worker died
)

#: Speculative-lane counters.  Their own reconciling ledger, *outside*
#: the request ledger above (an upgrade job is an internal by-product of
#: a request that already landed in ``completed`` or ``warm_hits``):
#: every ``spec_enqueued`` ends in exactly one of ``spec_upgraded``
#: (background opt-3 replaced the opt-1 entry), ``spec_stale`` (the CAS
#: lost to an equal-or-better artifact), ``spec_cancelled`` (withdrawn
#: by verb or disconnect), or ``spec_dropped`` (budget cap, requeue
#: exhaustion, or shutdown with the job still queued).
_SPEC_COUNTERS = (
    "spec_enqueued",
    "spec_upgraded",
    "spec_stale",
    "spec_cancelled",
    "spec_dropped",
)


class GatewayMetrics:
    """All gateway counters and latency reservoirs behind one lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {name: 0 for name in _COUNTERS + _SPEC_COUNTERS}
        self._per_worker: Dict[int, int] = {}
        self.warm_latency = LatencyReservoir()
        self.cold_latency = LatencyReservoir()
        self.queue_wait = LatencyReservoir()
        #: Answer→upgrade-landed gap of background opt-3 recompiles.
        self.upgrade_latency = LatencyReservoir()
        self.started = time.monotonic()

    def incr(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self._counters[name] += delta

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters[name]

    def worker_completed(self, pid: int) -> None:
        with self._lock:
            self._per_worker[pid] = self._per_worker.get(pid, 0) + 1

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def snapshot(self) -> Dict:
        uptime = max(time.monotonic() - self.started, 1e-9)
        with self._lock:
            counters = dict(self._counters)
            per_worker = dict(self._per_worker)
        # The speculative ledger reports under its own key so the
        # "requests" section keeps its original shape (and its own
        # reconciliation invariant) for existing consumers.
        spec = {name: counters.pop(name) for name in _SPEC_COUNTERS}
        return {
            "uptime_s": round(uptime, 3),
            "requests": counters,
            "speculative": spec,
            "latency": {
                "warm": self.warm_latency.summary(),
                "cold": self.cold_latency.summary(),
                "queue_wait": self.queue_wait.summary(),
                "upgrade": self.upgrade_latency.summary(),
            },
            "per_worker": {
                str(pid): {
                    "jobs": jobs,
                    "jobs_per_s": round(jobs / uptime, 4),
                }
                for pid, jobs in sorted(per_worker.items())
            },
        }
