"""Sharded batch compilation over a process pool.

``compile_batch`` takes a stream of JSON-able job specs, fingerprints every
job up front, answers what it can from the shared cache, **dedupes**
identical fingerprints (a heavy-traffic stream is dominated by repeats of
near-identical kernels), and shards only the unique cache misses across a
``ProcessPoolExecutor``.  Each worker keeps a private on-disk cache under
``<root>/workers/``, and the parent folds those back into the shared store
after the pool drains (:meth:`~repro.service.cache.CompileCache.merge_from`),
so a artifact compiled by any worker is visible to every later batch.

Job spec schema (one JSON object per job)::

    {
      "benchmark": "UCCSD-8",        # registry name ...
      "scale": "small",              # ... with optional scale, OR
      "program": {...},              # an explicit repro.service.artifact
                                     #   program payload, OR
      "text": "{(XX, 1.0), 0.5};",   # the Figure-5 textual IR
      "backend": "ft",               # default: registry backend, else "ft"
      "scheduler": "gco",            # default: backend default
      "coupling": "manhattan_65",    # or {"num_qubits": n, "edges": [[a,b]..]};
                                     #   default manhattan_65 for "sc"
      "device": "melbourne-15",      # registry name or a DeviceSpec snapshot
                                     #   dict; supplies coupling + noise model
                                     #   (mutually exclusive with "coupling")
      "run_peephole": true,
      "restarts": 1,
      "label": "anything"            # echoed into the result row
    }
"""

from __future__ import annotations

import os
import shutil
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import PauliProgram, parse_program
from ..transpile import CouplingMap, manhattan_65
from .artifact import dumps_artifact, loads_artifact, program_from_dict, program_to_dict
from .cache import CompileCache
from .fingerprint import canonical_options, compile_fingerprint

__all__ = ["BatchEntry", "BatchResult", "ResolvedJob", "resolve_spec", "compile_batch"]


# ----------------------------------------------------------------------
# Spec resolution
# ----------------------------------------------------------------------

@dataclass
class ResolvedJob:
    """A job spec normalized to (program, JSON-able option set, label)."""

    program: PauliProgram
    options: Dict
    label: str

    def fingerprint(self) -> str:
        # The same target resolution compile_program performs, so a
        # "device" spec fingerprints identically up front and in the
        # worker (deferred import: core is heavy and batch probing is
        # often cache-only).
        from ..core.compiler import resolve_target

        kwargs = _option_kwargs(self.options)
        coupling, edge_error, noise_model, device_name = resolve_target(
            coupling=kwargs.pop("coupling"),
            edge_error=kwargs.pop("edge_error"),
            device=kwargs.pop("device"),
        )
        return compile_fingerprint(
            self.program,
            canonical_options(
                coupling=coupling,
                edge_error=edge_error,
                noise_model=noise_model,
                device=device_name,
                **kwargs,
            ),
        )


def _resolve_coupling(spec) -> Optional[CouplingMap]:
    if spec is None:
        return None
    if spec == "manhattan_65":
        return manhattan_65()
    if isinstance(spec, dict):
        return CouplingMap(
            [tuple(edge) for edge in spec["edges"]],
            num_qubits=spec.get("num_qubits"),
        )
    raise ValueError(f"unknown coupling spec {spec!r}")


def _resolve_device(spec):
    """A registry name passes through (compile_program resolves it); an
    inline snapshot dict becomes a concrete DeviceSpec."""
    if spec is None or isinstance(spec, str):
        return spec
    if isinstance(spec, dict):
        from ..transpile import DeviceSpec  # deferred with the rest

        return DeviceSpec.from_snapshot(spec)
    raise ValueError(f"unknown device spec {spec!r}")


def _option_kwargs(options: Dict) -> Dict:
    """Materialize a JSON-able option set into ``compile_program`` kwargs."""
    edge_error = options.get("edge_error")
    return {
        "backend": options["backend"],
        "scheduler": options["scheduler"],
        "coupling": _resolve_coupling(options.get("coupling")),
        "edge_error": (
            {(int(a), int(b)): float(r) for a, b, r in edge_error}
            if edge_error is not None else None
        ),
        "run_peephole": options.get("run_peephole", True),
        "restarts": options.get("restarts", 1),
        "device": _resolve_device(options.get("device")),
    }


def resolve_spec(spec: Dict) -> ResolvedJob:
    """Normalize one job spec: build the program, default the options."""
    backend = spec.get("backend")
    if "benchmark" in spec:
        from ..workloads import BENCHMARKS  # deferred: registry is heavy

        name = spec["benchmark"]
        registered = BENCHMARKS.get(name)
        if registered is None:
            raise ValueError(f"unknown benchmark {name!r}")
        program = registered.build(spec.get("scale", "small"))
        backend = backend or registered.backend
        label = spec.get("label", name)
    elif "program" in spec:
        program = program_from_dict(spec["program"])
        label = spec.get("label", program.name or "program")
    elif "text" in spec:
        program = parse_program(spec["text"], name=spec.get("label", ""))
        label = spec.get("label", "text")
    else:
        raise ValueError(
            "job spec needs one of 'benchmark', 'program', or 'text'"
        )
    backend = backend or "ft"
    coupling = spec.get("coupling")
    device = spec.get("device")
    if device is not None and coupling is not None:
        raise ValueError("job spec takes 'device' or 'coupling', not both")
    if coupling is None and device is None and backend == "sc":
        coupling = "manhattan_65"
    options = {
        "backend": backend,
        "scheduler": spec.get("scheduler") or ("gco" if backend == "ft" else "do"),
        "coupling": coupling,
        "edge_error": spec.get("edge_error"),
        "run_peephole": spec.get("run_peephole", True),
        "restarts": spec.get("restarts", 1),
        "device": device,
    }
    return ResolvedJob(program=program, options=options, label=label)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

_WORKER_CACHE: Optional[CompileCache] = None
_WORKER_STATS_BASE: Dict[str, int] = {}


def _worker_init(cache_root: Optional[str], memory_entries: int,
                 store: str = "private") -> None:
    """Open this worker's cache.

    ``store="private"`` (batch mode) gives each worker its own store under
    ``<root>/workers/`` that the parent merges back after the pool drains;
    ``store="shared"`` (gateway mode) points every worker directly at the
    shared root — the atomic temp-file + ``os.replace`` publish makes
    concurrent writers safe, and nothing needs merging afterwards.
    """
    global _WORKER_CACHE, _WORKER_STATS_BASE
    _WORKER_STATS_BASE = {}
    if cache_root is None:
        _WORKER_CACHE = None
    elif store == "shared":
        _WORKER_CACHE = CompileCache(cache_root, memory_entries=memory_entries)
    else:
        _WORKER_CACHE = CompileCache(
            os.path.join(cache_root, "workers", f"worker-{os.getpid()}"),
            memory_entries=memory_entries,
        )


def _worker_stats_delta() -> Dict[str, int]:
    """This worker cache's counter movement since the previous report.

    Shipping deltas with every result (rather than discarding worker
    stats, as the merge used to) keeps the batch/gateway accounting
    exact: a worker whose LRU front fills mid-run reports those
    evictions instead of silently dropping them.
    """
    global _WORKER_STATS_BASE
    if _WORKER_CACHE is None:
        return {}
    snap = _WORKER_CACHE.stats.snapshot()
    delta = {
        key: value - _WORKER_STATS_BASE.get(key, 0)
        for key, value in snap.items()
        if value != _WORKER_STATS_BASE.get(key, 0)
    }
    _WORKER_STATS_BASE = snap
    return delta


def _worker_compile(payload: Tuple) -> Tuple[str, Optional[str], float,
                                             Optional[Dict], Dict, int]:
    """Compile one deduped job.

    ``payload`` is ``(fingerprint, program_dict, options)`` plus an
    optional fourth ``cancel_path`` element: when given, the compile
    aborts cooperatively as soon as that flag file appears (the gateway
    touches it when every client waiting on the job has gone away).  An
    optional fifth ``tier`` element selects the speculative fast pass:
    ``"opt1"`` compiles with peephole level 1 and a single placement
    attempt (the gateway's answer-now tier; the full recompile follows
    in its background lane), while ``"opt3"`` is that background
    recompile: a full-effort compile whose artifact is published as a
    compare-and-swap *upgrade* of the request fingerprint.

    Tiered payloads bypass ``compile_program``'s own cache plumbing and
    publish explicitly under the *request* fingerprint: the fast pass
    alters compile options (restarts, peephole level), so the compiler's
    internally derived fingerprint would differ from the key the gateway
    serves under, and the upgrade pass must go through the cache's CAS
    (``upgrade``) so a concurrent full-effort publish is never clobbered
    and the parent can detect landed upgrades from the worker's
    ``upgraded`` counter delta.

    Returns ``(fingerprint, artifact_or_None, seconds, metrics_or_None,
    worker_stats_delta, pid)``; the artifact is ``None`` when the job was
    cancelled mid-compile.
    """
    from ..core.compiler import CompilationCancelled, compile_program

    fingerprint, program_dict, options = payload[:3]
    cancel_path = payload[3] if len(payload) > 3 else None
    tier = payload[4] if len(payload) > 4 else None
    cancel = None
    if cancel_path is not None:
        cancel = lambda: os.path.exists(cancel_path)  # noqa: E731
    kwargs = _option_kwargs(options)
    if tier == "opt1":
        kwargs["restarts"] = 1
        kwargs["peephole_level"] = 1
    program = program_from_dict(program_dict)
    start = time.perf_counter()
    try:
        result = compile_program(
            program,
            cache=None if tier is not None else _WORKER_CACHE,
            cancel=cancel,
            **kwargs,
        )
    except CompilationCancelled:
        return (fingerprint, None, time.perf_counter() - start, None,
                _worker_stats_delta(), os.getpid())
    elapsed = time.perf_counter() - start
    if result.fingerprint is None:
        result.fingerprint = fingerprint
    text = dumps_artifact(result)
    if tier is not None and _WORKER_CACHE is not None:
        if tier == "opt3":
            _WORKER_CACHE.upgrade(fingerprint, text)
        else:
            _WORKER_CACHE.put_tiered(fingerprint, text, result.tier)
    return (fingerprint, text, elapsed, result.metrics,
            _worker_stats_delta(), os.getpid())


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

@dataclass
class BatchEntry:
    """One input job's outcome, in input order."""

    index: int
    label: str
    fingerprint: str
    #: Served straight from the shared cache, before any dispatch.
    cached: bool
    #: Same fingerprint as an earlier job in this batch (never dispatched).
    deduped: bool
    artifact: str
    seconds: float

    def result(self):
        return loads_artifact(self.artifact)


@dataclass
class BatchResult:
    entries: List[BatchEntry]
    workers: int
    wall_seconds: float
    cache_stats: Optional[Dict] = None
    merged_artifacts: int = 0
    unique_jobs: int = 0
    dispatched_jobs: int = 0
    #: Aggregate counter movement across the pool's worker-side caches
    #: (private stores in batch mode, the shared store in gateway mode).
    worker_stats: Optional[Dict] = None
    #: Jobs completed per worker pid (empty for the serial path).
    per_worker: Dict[int, int] = field(default_factory=dict)

    def summary(self) -> Dict:
        out = {
            "jobs": len(self.entries),
            "unique": self.unique_jobs,
            "dispatched": self.dispatched_jobs,
            "cache_hits": sum(1 for e in self.entries if e.cached),
            "deduped": sum(1 for e in self.entries if e.deduped),
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "merged_artifacts": self.merged_artifacts,
        }
        if self.cache_stats is not None:
            out["cache"] = self.cache_stats
        if self.worker_stats:
            out["worker_cache"] = self.worker_stats
        return out


def compile_batch(
    specs: Sequence[Dict],
    cache: Optional[CompileCache] = None,
    workers: int = 1,
    worker_memory_entries: int = 64,
    worker_store: str = "private",
) -> BatchResult:
    """Compile a stream of job specs, deduped and sharded across workers.

    ``workers <= 1`` compiles serially in-process (no pool overhead), still
    with fingerprint dedupe and cache reuse.  ``worker_store`` selects how
    pool workers see the disk store: ``"private"`` stores merged back after
    the pool drains (the batch default), or ``"shared"`` — every worker
    writes the shared root directly (atomic publishes, nothing to merge),
    with the workers' counter movement folded into ``cache.stats`` since
    they are operations on that same store.
    """
    if worker_store not in ("private", "shared"):
        raise ValueError(f"unknown worker_store {worker_store!r}")
    start = time.perf_counter()
    jobs = [resolve_spec(spec) for spec in specs]
    fingerprints = [job.fingerprint() for job in jobs]

    # Shared-cache probe + fingerprint dedupe, in input order.
    artifact_by_fp: Dict[str, str] = {}
    seconds_by_fp: Dict[str, float] = {}
    cached_fps = set()
    first_index: Dict[str, int] = {}
    pending: List[int] = []   # indices of unique jobs that must compile
    for index, fp in enumerate(fingerprints):
        if fp in first_index:
            continue
        first_index[fp] = index
        if cache is not None:
            stored = cache.get(fp)
            if stored is not None:
                artifact_by_fp[fp] = stored
                seconds_by_fp[fp] = 0.0
                cached_fps.add(fp)
                continue
        pending.append(index)

    merged = 0
    worker_stats: Dict[str, int] = {}
    per_worker: Dict[int, int] = {}
    if pending and workers > 1:
        cache_root = str(cache.root) if cache is not None and cache.root else None
        payloads = [
            (fingerprints[i], program_to_dict(jobs[i].program), jobs[i].options)
            for i in pending
        ]
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(cache_root, worker_memory_entries, worker_store),
        ) as pool:
            for fp, text, elapsed, _metrics, delta, pid in pool.map(
                    _worker_compile, payloads):
                artifact_by_fp[fp] = text
                seconds_by_fp[fp] = elapsed
                per_worker[pid] = per_worker.get(pid, 0) + 1
                for key, value in delta.items():
                    worker_stats[key] = worker_stats.get(key, 0) + value
        # Fold the workers' private stores into the shared one *before* the
        # parent's own puts (so `merged` reflects the pool's output), then
        # drop them — their content now lives in the shared store.
        if (cache is not None and cache.root is not None
                and worker_store == "private"):
            workers_dir = cache.root / "workers"
            if workers_dir.is_dir():
                for worker_root in sorted(workers_dir.iterdir()):
                    if worker_root.is_dir():
                        merged += cache.merge_from(worker_root)
                shutil.rmtree(workers_dir, ignore_errors=True)
        if cache is not None:
            shared_disk = worker_store == "shared" and cache.root is not None
            if shared_disk:
                # The workers' puts/evictions happened *on this store*;
                # fold them into its stats instead of dropping them.
                cache.stats.absorb(worker_stats)
            for index in pending:
                fp = fingerprints[index]
                if shared_disk:
                    # Already on disk, already counted — just make it hot.
                    cache.promote(fp, artifact_by_fp[fp])
                else:
                    # adopt(): the merge above already placed these on disk.
                    cache.adopt(fp, artifact_by_fp[fp])
    elif pending:
        from ..core.compiler import compile_program

        for index in pending:
            job = jobs[index]
            fp = fingerprints[index]
            # The batch-level probe above already counted this miss; compile
            # without the cache and store explicitly (mirrors the pool path)
            # so the stats see each lookup exactly once.
            t0 = time.perf_counter()
            result = compile_program(job.program, **_option_kwargs(job.options))
            seconds_by_fp[fp] = time.perf_counter() - t0
            result.fingerprint = fp
            text = dumps_artifact(result)
            artifact_by_fp[fp] = text
            if cache is not None:
                cache.put(fp, text)

    entries = [
        BatchEntry(
            index=index,
            label=job.label,
            fingerprint=fp,
            cached=fp in cached_fps,
            deduped=first_index[fp] != index,
            artifact=artifact_by_fp[fp],
            seconds=seconds_by_fp[fp] if first_index[fp] == index else 0.0,
        )
        for index, (job, fp) in enumerate(zip(jobs, fingerprints))
    ]
    return BatchResult(
        entries=entries,
        workers=max(1, workers),
        wall_seconds=time.perf_counter() - start,
        cache_stats=cache.stats.as_dict() if cache is not None else None,
        merged_artifacts=merged,
        unique_jobs=len(first_index),
        dispatched_jobs=len(pending),
        worker_stats=worker_stats or None,
        per_worker=per_worker,
    )
