"""Content fingerprints for compilations: hash(program semantics + options).

The Paulihedral pipeline is deterministic per ``(program, backend,
scheduler, opt knobs)``, so a compilation is fully identified by a content
hash of its inputs.  The program side hashes the canonical symplectic form
(:meth:`repro.ir.PauliProgram.canonical_form`), which is invariant under
block/term reordering and coefficient reformatting; the option side hashes
a canonical JSON encoding of every knob that can change the output: the
coupling-map edge set, the explicit per-edge error rates (when passed),
the full noise-model calibration (quantized to 1e-6, see
:meth:`repro.noise.model.NoiseModel.quantized_spec`) and the device name
when compiling against a registry device.  Two compiles of the same
program for same-topology devices with different calibrations therefore
get distinct fingerprints — a recalibrated device can never be served the
stale artifact routed for its old error rates.

**Granularity of the key.**  The fingerprint identifies a compilation by
the *IR semantics* of its input — the multiset of blocks, each a multiset
of weighted terms (Figure 7: the operator is a sum) — not by one
particular textual ordering.  That is exactly the commutation licence the
scheduling passes already exploit: the schedulers freely reorder blocks,
so two programs that are reorderings of each other are interchangeable
inputs, and a cache hit may return the artifact compiled from *any*
program with the same canonical form.  For a given program object the
pipeline is deterministic end to end, so a hit is byte-identical to that
program's own cold compile; across reordered-but-equal programs the
served artifact is one valid compilation of the shared semantics (its
gate counts may differ from what the other ordering would have produced,
because scheduler tie-breaks see input order).  Callers who want textual
orderings keyed apart should compile without a cache or add a salt to the
options.

Fingerprints are hex SHA-256 digests: stable across interpreter restarts
and machines (no Python ``hash()`` anywhere), usable directly as
content-addressed store keys.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Tuple

from typing import TYPE_CHECKING

from ..ir import PauliProgram
from ..transpile import CouplingMap

if TYPE_CHECKING:  # annotation-only: the noise package sits above service
    from ..noise.model import NoiseModel

__all__ = [
    "FINGERPRINT_VERSION",
    "canonical_options",
    "program_fingerprint",
    "compile_fingerprint",
]

#: Bump when the canonical program encoding or option encoding changes;
#: mixed into every digest so stale stores can never serve new requests.
#: v2: noise-model calibration (quantized) + device name joined the option
#: spec — pre-noise artifacts must not satisfy noise-aware requests.
FINGERPRINT_VERSION = 2


def _coupling_spec(coupling: Optional[CouplingMap]):
    """JSON-able identity of a coupling map: qubit count + sorted edges.

    The map's ``name`` is ignored — two differently-named maps with the
    same topology compile identically.
    """
    if coupling is None:
        return None
    return [coupling.num_qubits, sorted(tuple(e) for e in coupling.edges)]


def _edge_error_spec(edge_error: Optional[Dict[Tuple[int, int], float]]):
    if edge_error is None:
        return None
    return sorted(
        [int(a), int(b), float(rate)] for (a, b), rate in edge_error.items()
    )


def canonical_options(
    backend: str,
    scheduler: str,
    coupling: Optional[CouplingMap] = None,
    edge_error: Optional[Dict[Tuple[int, int], float]] = None,
    run_peephole: bool = True,
    restarts: int = 1,
    noise_model: Optional["NoiseModel"] = None,
    device: Optional[str] = None,
) -> bytes:
    """Canonical byte encoding of every output-affecting compile option.

    ``scheduler`` must be the *resolved* scheduler (the backend default
    applied), so ``scheduler=None`` and an explicit ``"gco"`` on the FT
    backend produce the same fingerprint.  ``noise_model`` enters via its
    quantized calibration spec; ``device`` is the registry name (two
    registry devices can share a topology but not a name, and a snapshot
    device's name travels with its calibration).
    """
    spec = {
        "backend": backend,
        "scheduler": scheduler,
        "coupling": _coupling_spec(coupling),
        "edge_error": _edge_error_spec(edge_error),
        "run_peephole": bool(run_peephole),
        "restarts": int(restarts),
        "noise_model": (
            None if noise_model is None else noise_model.quantized_spec()
        ),
        "device": device,
        "version": FINGERPRINT_VERSION,
    }
    return json.dumps(spec, sort_keys=True, separators=(",", ":")).encode()


def program_fingerprint(program: PauliProgram) -> str:
    """Hex SHA-256 of the program's canonical symplectic form alone."""
    return hashlib.sha256(program.canonical_form()).hexdigest()


def compile_fingerprint(program: PauliProgram, options: bytes) -> str:
    """Hex SHA-256 identifying one compilation: program content + options.

    ``options`` is the output of :func:`canonical_options`.
    """
    digest = hashlib.sha256()
    digest.update(program.canonical_form())
    digest.update(b"\x00")
    digest.update(options)
    return digest.hexdigest()
