"""Async compile gateway: an admission-controlled streaming daemon.

The seventh architectural layer.  Where ``compile-batch`` amortizes the
content-addressed cache over one process lifetime, the gateway amortizes
it over *many concurrent clients*: a single long-running asyncio process
owns the cache, accepts newline-delimited JSON requests over a local
socket (:mod:`repro.service.protocol`), and streams results back as they
complete — a warm key answers in microseconds while a cold paper-scale
compile is still running behind it.

Request flow::

            ┌──────────── warm lane (never queued) ───────────┐
    frame → resolve → cache probe ─ hit ─→ respond immediately ┘
                          │ miss
                          ▼
              admission control ── full ─→ reject (overloaded)
                          │ admitted
                          ▼
          per-client FIFO queues, drained round-robin   ← fairness
                          │
                          ▼
         in-flight dedupe by fingerprint (followers attach)
                          │
                          ▼
        process-pool workers (shared-store mode) ──→ stream responses

Properties the test battery holds the gateway to:

* **Bounded**: at most ``queue_limit`` undispatched cold jobs globally
  and ``per_client_limit`` outstanding per client; excess is rejected
  with ``overloaded``, never buffered.
* **Fair**: cold dispatch drains client queues round-robin, so one
  client flooding cold misses cannot starve another's single request.
* **Deduplicated**: concurrent requests for one fingerprint compile
  once; followers attach to the in-flight job and all stream the result.
* **Cancellable**: a ``cancel`` verb or a client disconnect removes
  undispatched jobs outright and flags dispatched ones through the
  cooperative-cancellation flag file that
  :func:`repro.core.compiler.compile_program` polls at pass boundaries.
* **Self-healing**: a killed worker process breaks the pool; the gateway
  rebuilds it and retries the in-flight jobs instead of failing them.
* **Accountable**: the ``stats`` verb reconciles — every received
  request ends in exactly one outcome counter, and cache/latency/
  per-worker-throughput numbers come from the same structures the
  benchmark gates.

Speculative lane (``speculate=True``): a third lane *behind* warm and
cold.  A cold miss compiles at the fast opt-1 tier and answers
immediately; the gateway then enqueues a background full-effort
recompile that upgrades the cache entry in place
(:meth:`CompileCache.upgrade`, a compare-and-swap — a concurrent
full-tier writer wins and the upgrade counts as stale).  The background
lane can never starve cold traffic: an upgrade job is only dispatched
when the cold queue is *empty*, the queue is bounded by
``speculative_limit`` (overflow counts ``spec_dropped``), and a cold
arrival that finds every slot held preempts running upgrades through
the same cooperative cancel-flag mechanism — the preempted job requeues
behind the cold work.  Clients that set ``want_upgrade`` on the request
get one ``upgrade`` push frame when the background recompile resolves;
cancelling that request id or disconnecting withdraws their interest,
and a job nobody is interested in is withdrawn outright.  The
speculative ledger reconciles like the request one: ``spec_enqueued ==
spec_upgraded + spec_stale + spec_cancelled + spec_dropped``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing
import os
import shutil
import tempfile
import time
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Set, Tuple

from .artifact import (
    TIER_FAST,
    TIER_FULL,
    artifact_tier,
    loads_artifact,
    program_to_dict,
    tier_rank,
)
from .batch import _worker_compile, _worker_init, resolve_spec
from .cache import CompileCache
from .metrics import GatewayMetrics
from .protocol import (
    E_BAD_SPEC,
    E_CANCELLED,
    E_COMPILE,
    E_OVERLOADED,
    E_SHUTTING_DOWN,
    E_UNSUPPORTED,
    MAX_FRAME_BYTES,
    ProtocolError,
    Request,
    encode_frame,
    error_frame,
    hello_frame,
    parse_request,
)

__all__ = ["GatewayConfig", "CompileGateway", "GatewayClient", "prepare_unix_path"]


@dataclass
class GatewayConfig:
    """Everything that shapes one gateway's behavior."""

    #: Unix-domain socket path; when set it wins over host/port.
    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (read it from ``address``).
    port: int = 0
    cache_root: Optional[str] = None
    memory_entries: int = 256
    #: ``>= 1``: a process pool of that width in shared-store mode.
    #: ``0``: compile in one in-process thread (no pool — cheap to start,
    #: used by tests and tiny deployments; cancellation still works).
    workers: int = 1
    #: Global cap on undispatched cold jobs.
    queue_limit: int = 64
    #: Cap on one client's unanswered cold requests.
    per_client_limit: int = 16
    worker_memory_entries: int = 64
    resolve_memo_entries: int = 4096
    metrics_memo_entries: int = 4096
    #: Honor the ``shutdown`` verb (off by default: a local admin signal
    #: should stop the daemon, not any client that can open the socket).
    allow_shutdown: bool = False
    #: Re-dispatch attempts when the process pool breaks under a job.
    dispatch_retries: int = 2
    drain_timeout: float = 30.0
    #: Cluster replication: peer nodes' store directories probed (pull-
    #: through) when the local disk tier misses, before compiling.
    peer_stores: Tuple[str, ...] = ()
    #: How many peers one miss consults (None = all of peer_stores).
    replica_probes: Optional[int] = None
    #: Tiered speculative compilation: cold misses answer at the fast
    #: opt-1 tier and a background full-effort recompile upgrades the
    #: cache entry in place.
    speculate: bool = False
    #: Budget cap on queued background upgrade jobs; overflow is counted
    #: ``spec_dropped`` rather than buffered.
    speculative_limit: int = 8


@dataclass
class _Waiter:
    """One client request attached to a cold job."""

    client: "_Client"
    request_id: str
    want: str
    admitted_at: float
    fingerprint: str = ""
    cancelled: bool = False
    #: Subscribe this request to the background lane's ``upgrade`` push
    #: frame (strictly opt-in: pipelined clients must never receive an
    #: unsolicited trailing frame for an id they consider answered).
    want_upgrade: bool = False


@dataclass
class _ColdJob:
    """One unique fingerprint being compiled, with every request waiting
    on it."""

    fingerprint: str
    program_dict: Dict
    options: Dict
    label: str
    cancel_path: str
    created_at: float
    waiters: List[_Waiter] = field(default_factory=list)
    dispatched: bool = False
    requeues: int = 0
    #: Compile effort: ``full``, or the fast ``opt1`` pass when the
    #: gateway speculates (the background lane upgrades it later).
    tier: str = "full"
    #: The client whose pending deque currently holds this job (None once
    #: dispatched); lets pruning reap an abandoned job from the queue
    #: eagerly instead of leaving a capacity-consuming tombstone.
    owner: Optional["_Client"] = None

    def live_waiters(self) -> List[_Waiter]:
        return [w for w in self.waiters
                if not w.cancelled and not w.client.closed]


@dataclass(eq=False)            # identity semantics: jobs live in sets
class _SpecJob:
    """One background full-effort recompile of a fingerprint the cache
    currently holds at a lower tier."""

    fingerprint: str
    program_dict: Dict
    options: Dict
    label: str
    cancel_path: str
    enqueued_at: float
    #: Clients whose request spawned (or re-spawned) this upgrade; when
    #: the last one cancels or disconnects the job is withdrawn — the
    #: background lane never burns a worker nobody is waiting to benefit
    #: from.
    interested: Set["_Client"] = field(default_factory=set)
    #: ``(client, request_id)`` pairs that asked for the ``upgrade``
    #: push frame (``want_upgrade``); always a subset of ``interested``.
    subscribers: List[Tuple["_Client", str]] = field(default_factory=list)
    dispatched: bool = False
    withdrawn: bool = False
    #: Set when a cold arrival preempted this running job (its cancel
    #: flag was touched to free the slot); it requeues instead of dying.
    preempted: bool = False
    requeues: int = 0


def _withdraw_cancel_flag(path: str) -> None:
    """Remove a job's cancel-flag file if present (blocking: callers on
    the event loop run this via the executor)."""
    try:
        os.unlink(path)
    except OSError:
        pass


class _Client:
    """Per-connection state, owned by the event loop."""

    _ids = itertools.count(1)

    def __init__(self, writer: asyncio.StreamWriter):
        self.id = next(self._ids)
        self.writer = writer
        self.send_lock = asyncio.Lock()
        self.closed = False
        #: Cold jobs this client is responsible for dispatching (fairness
        #: unit: the round-robin drains one of these per turn).
        self.pending: Deque[_ColdJob] = deque()
        self.in_rr = False
        #: Unanswered cold requests, keyed by request id.
        self.waiting: Dict[str, _Waiter] = {}
        #: Answered requests still subscribed to an ``upgrade`` push
        #: frame, keyed by request id (cancel verb lookups).
        self.upgrades: Dict[str, _SpecJob] = {}


class CompileGateway:
    """The daemon.  ``await start()``, then ``await closed_event.wait()``
    or hold it open however the caller likes; ``await close()`` drains and
    releases everything."""

    def __init__(self, config: GatewayConfig,
                 cache: Optional[CompileCache] = None):
        self.config = config
        self.cache = cache if cache is not None else CompileCache(
            config.cache_root, memory_entries=config.memory_entries,
            peer_roots=config.peer_stores,
            replica_probes=config.replica_probes,
        )
        self.metrics = GatewayMetrics()
        self.shutdown_requested = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._clients: Set[_Client] = set()
        self._cold: Dict[str, _ColdJob] = {}
        #: Background upgrade jobs: dedupe map + FIFO queue + the ones a
        #: worker is currently compiling (preemption targets).
        self._spec: Dict[str, _SpecJob] = {}
        self._spec_queue: Deque[_SpecJob] = deque()
        self._spec_running: Set[_SpecJob] = set()
        self._rr: Deque[_Client] = deque()
        self._queued = 0
        self._in_flight = 0
        self._work = asyncio.Event()
        self._slot_free = asyncio.Event()
        self._slot_free.set()
        self._closing = False
        self._dispatcher: Optional[asyncio.Task] = None
        self._job_tasks: Set[asyncio.Task] = set()
        self._resolve_memo: "OrderedDict[str, Tuple]" = OrderedDict()
        self._metrics_memo: "OrderedDict[str, Dict]" = OrderedDict()
        self._cancel_dir: Optional[Path] = None
        self._cancel_seq = itertools.count(1)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_epoch = 0
        self._pool_lock: Optional[asyncio.Lock] = None
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._seen_worker_pids: Set[int] = set()
        #: True once *this* gateway bound its socket; close() only removes
        #: the socket file / sweeps the store when it actually owned them.
        self._bound = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._cancel_dir = Path(await loop.run_in_executor(
            None, lambda: tempfile.mkdtemp(prefix="repro-gw-cancel-")))
        self._pool_lock = asyncio.Lock()
        # Crash recovery: clear droppings a previous incarnation's killed
        # workers may have left mid-publish.  The sweep walks the store
        # directory, so it runs off-loop like every other disk touch here.
        await loop.run_in_executor(None, self.cache.sweep_stale_tmp)
        if self.config.workers >= 1:
            self._pool = self._new_pool()
        else:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="gw-compile"
            )
        if self.config.socket_path:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.socket_path,
                limit=MAX_FRAME_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port,
                limit=MAX_FRAME_BYTES,
            )
        self._bound = True
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    @property
    def address(self) -> str:
        """Human-readable bound address (socket path or ``host:port``)."""
        if self.config.socket_path:
            return self.config.socket_path
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return f"{host}:{port}"

    @property
    def port(self) -> Optional[int]:
        if self.config.socket_path or self._server is None:
            return None
        return self._server.sockets[0].getsockname()[1]

    def _new_pool(self) -> ProcessPoolExecutor:
        # "spawn" keeps pool rebuilds safe no matter how many threads the
        # daemon has accumulated (fork from a threaded process can inherit
        # held locks); workers re-import once and then live for thousands
        # of jobs, so the startup cost amortizes to nothing.
        return ProcessPoolExecutor(
            max_workers=self.config.workers,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_worker_init,
            initargs=(
                str(self.cache.root) if self.cache.root is not None else None,
                self.config.worker_memory_entries,
                "shared",
            ),
        )

    async def close(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain in-flight work, tear down."""
        self._closing = True
        self._work.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            deadline = time.monotonic() + self.config.drain_timeout
            while ((self._queued or self._in_flight or self._job_tasks)
                   and time.monotonic() < deadline):
                await asyncio.sleep(0.02)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        for task in list(self._job_tasks):
            task.cancel()
        if self._job_tasks:
            await asyncio.gather(*self._job_tasks, return_exceptions=True)
        # Upgrade jobs still queued will never run; account each so the
        # speculative ledger reconciles across a shutdown.
        while self._spec_queue:
            spec = self._spec_queue.popleft()
            self._drop_spec(spec)
            self.metrics.incr(
                "spec_cancelled" if spec.withdrawn else "spec_dropped")
        # Whatever still waits gets a clean refusal before the socket dies;
        # count each one so the outcome ledger still reconciles (these
        # requests were admitted but will never complete).
        for client in list(self._clients):
            for waiter in list(client.waiting.values()):
                if not waiter.cancelled:
                    waiter.cancelled = True
                    self.metrics.incr("rejected")
                    await self._send(client, error_frame(
                        "compile", waiter.request_id, E_SHUTTING_DOWN,
                        "gateway is shutting down",
                    ))
            client.closed = True
            try:
                client.writer.close()
            except Exception:
                pass
        if self._pool is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: self._pool.shutdown(wait=True, cancel_futures=True)
            )
            self._pool = None
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        # The teardown disk work (temp-dir removal, orphan sweep, socket
        # unlink) runs off-loop in one hop: close() may overlap live
        # traffic on other gateways sharing this loop.
        await asyncio.get_running_loop().run_in_executor(
            None, self._cleanup_disk)

    def _cleanup_disk(self) -> None:
        """Blocking teardown I/O, executed on the executor by close()."""
        if self._cancel_dir is not None:
            shutil.rmtree(self._cancel_dir, ignore_errors=True)
        # Only when this gateway actually served: another daemon may own
        # the path/store when close() runs after a failed bind, and its
        # socket file and in-flight .tmp publishes must survive.
        if self._bound:
            # All our writers are down: any .tmp left is an orphan
            # (killed worker).
            self.cache.sweep_stale_tmp(max_age_seconds=0.0)
            if (self.config.socket_path
                    and os.path.exists(self.config.socket_path)):
                try:
                    os.unlink(self.config.socket_path)
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        client = _Client(writer)
        self._clients.add(client)
        self.metrics.incr("connections_total")
        await self._send(client, hello_frame())
        try:
            while not client.closed:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Over-long line: framing is lost, drop the connection.
                    self.metrics.incr("bad_requests")
                    await self._send(client, error_frame(
                        None, None, "bad-frame", "frame exceeds size limit"))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                await self._handle_frame(client, line)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._disconnect(client)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle_frame(self, client: _Client, line: bytes) -> None:
        received_at = time.perf_counter()
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self.metrics.incr("bad_requests")
            await self._send(client, error_frame(
                None, exc.request_id, exc.code, str(exc)))
            return
        if request.op == "ping":
            await self._send(client, {"op": "pong", "id": request.id, "ok": True})
        elif request.op == "stats":
            await self._send(client, {
                "op": "stats", "id": request.id, "ok": True,
                "stats": self.stats(),
            })
        elif request.op == "shutdown":
            if not self.config.allow_shutdown:
                await self._send(client, error_frame(
                    "shutdown", request.id, E_UNSUPPORTED,
                    "shutdown verb is disabled (start with --allow-shutdown)"))
                return
            await self._send(client, {
                "op": "shutdown", "id": request.id, "ok": True})
            self.shutdown_requested.set()
        elif request.op == "cancel":
            await self._handle_cancel(client, request)
        else:  # compile
            await self._handle_compile(client, request, received_at)

    async def _handle_compile(self, client: _Client, request: Request,
                              received_at: float) -> None:
        self.metrics.incr("received")
        try:
            fingerprint, options, program_dict, label = \
                await self._resolve(request.spec)
        except (ValueError, KeyError, TypeError) as exc:
            self.metrics.incr("bad_specs")
            await self._send(client, error_frame(
                "compile", request.id, E_BAD_SPEC, str(exc)))
            return

        # Warm lane: a cache hit never queues, never touches a worker.
        # The memory front answers inline (lock-guarded dict probe, no
        # I/O).  Only a memory miss with no in-flight compile pays an
        # executor hop for the disk tier: an in-flight fingerprint cannot
        # be on disk yet (the publish happens before the job leaves
        # ``_cold``), and skipping the hop keeps follower attachment
        # suspension-free — see the dedupe path below.
        text = self.cache.get_memory(fingerprint)
        if text is None and fingerprint not in self._cold:
            text = await asyncio.get_running_loop().run_in_executor(
                None, self.cache.get_disk, fingerprint)
        if text is not None:
            tier = None
            if self.config.speculate or request.want_upgrade:
                tier = self._tier_of(text)
            frame = self._result_frame(
                request.id, request.want, fingerprint, text,
                cached=True, queued_ms=0.0, compile_ms=0.0, tier=tier,
            )
            if frame is None:
                # Corrupt stored artifact: heal by dropping the entry and
                # falling through to a cold compile.  Discard unlinks the
                # disk entry, so it goes through the executor too.
                await asyncio.get_running_loop().run_in_executor(
                    None, self.cache.discard, fingerprint)
            else:
                await self._send(client, frame)
                self.metrics.incr("warm_hits")
                self.metrics.warm_latency.record(
                    time.perf_counter() - received_at)
                # Re-speculation: a warm hit on a lower-tier entry (e.g.
                # left by a gateway restart mid-upgrade) re-arms the
                # background recompile.
                if (self.config.speculate and not self._closing
                        and tier is not None
                        and tier_rank(tier) < tier_rank(TIER_FULL)
                        and options.get("run_peephole", True)):
                    self._enqueue_spec(
                        fingerprint, program_dict, options, label,
                        interested={client},
                        subscribers=(
                            [(client, request.id)]
                            if request.want_upgrade else []),
                    )
                return

        if self._closing:
            await self._send(client, error_frame(
                "compile", request.id, E_SHUTTING_DOWN,
                "gateway is shutting down"))
            self.metrics.incr("rejected")
            return

        # Cold lane: admission control, then the fairness queue.
        if len(client.waiting) >= self.config.per_client_limit:
            self.metrics.incr("rejected")
            await self._send(client, error_frame(
                "compile", request.id, E_OVERLOADED,
                f"client has {len(client.waiting)} unanswered cold requests "
                f"(limit {self.config.per_client_limit})"))
            return

        waiter = _Waiter(client=client, request_id=request.id,
                         want=request.want, admitted_at=received_at,
                         fingerprint=fingerprint,
                         want_upgrade=request.want_upgrade)
        job = self._cold.get(fingerprint)
        if job is not None:
            # Follower: the same fingerprint is already queued or running;
            # attach instead of compiling twice.  Attach *before* any
            # suspension so a job completing mid-await still answers this
            # waiter.
            job.waiters.append(waiter)
            client.waiting[request.id] = waiter
            self.metrics.incr("admitted")
            if job.dispatched:
                # A cancel may have raced in before this new interest;
                # withdraw the flag off-loop — if the worker already
                # honored it, the completion handler re-queues for the
                # new waiters.
                await asyncio.get_running_loop().run_in_executor(
                    None, _withdraw_cancel_flag, job.cancel_path)
            return

        if self._queued >= self.config.queue_limit:
            self.metrics.incr("rejected")
            await self._send(client, error_frame(
                "compile", request.id, E_OVERLOADED,
                f"cold queue is full ({self._queued}/{self.config.queue_limit})"))
            return

        # Speculation compiles the fast opt-1 tier first (answer now, the
        # background lane upgrades later); a spec that disables peephole
        # has nothing to speed up and stays on the full path.
        tier = TIER_FULL
        if self.config.speculate and options.get("run_peephole", True):
            tier = TIER_FAST
        job = _ColdJob(
            fingerprint=fingerprint,
            program_dict=program_dict,
            options=options,
            label=label,
            cancel_path=str(
                self._cancel_dir / f"job-{next(self._cancel_seq)}.cancel"),
            created_at=received_at,
            waiters=[waiter],
            tier=tier,
        )
        client.waiting[request.id] = waiter
        self._cold[fingerprint] = job
        self._enqueue(client, job)
        self.metrics.incr("admitted")

    async def _handle_cancel(self, client: _Client, request: Request) -> None:
        waiter = client.waiting.get(request.id)
        state = "not-found"
        if waiter is not None and not waiter.cancelled:
            waiter.cancelled = True
            del client.waiting[request.id]
            self.metrics.incr("cancelled")
            await self._send(client, error_frame(
                "compile", request.id, E_CANCELLED, "cancelled by request"))
            job = self._cold.get(waiter.fingerprint)
            if job is not None and waiter in job.waiters:
                self._prune_job(job)
                state = "in-flight" if job.dispatched else "cancelled"
            else:
                state = "cancelled"
        elif waiter is None:
            # The compile already answered, but this id may still hold an
            # upgrade subscription: cancelling it mid-upgrade withdraws
            # the client's interest (and the whole background job when it
            # was the last interested client).
            spec = client.upgrades.pop(request.id, None)
            if spec is not None:
                spec.subscribers = [
                    (c, r) for c, r in spec.subscribers
                    if not (c is client and r == request.id)]
                if not any(c is client for c, _ in spec.subscribers):
                    spec.interested.discard(client)
                if not spec.interested and not spec.withdrawn:
                    self._withdraw_spec(spec)
                state = "upgrade-cancelled"
        await self._send(client, {
            "op": "cancel", "id": request.id, "ok": True, "state": state})

    def _disconnect(self, client: _Client) -> None:
        if client not in self._clients:
            return
        self._clients.discard(client)
        client.closed = True
        self.metrics.incr("disconnects")
        cancelled = 0
        for waiter in client.waiting.values():
            if not waiter.cancelled:
                waiter.cancelled = True
                cancelled += 1
        client.waiting.clear()
        if cancelled:
            self.metrics.incr("cancelled", cancelled)
        # Jobs this client was queued to dispatch: hand live ones to a
        # surviving waiter's client, drop the rest.
        while client.pending:
            job = client.pending.popleft()
            job.owner = None
            self._queued -= 1
            survivors = job.live_waiters()
            if survivors:
                self._enqueue(survivors[0].client, job)
            else:
                self._cold.pop(job.fingerprint, None)
        # Jobs elsewhere whose last waiter just left: flag in-flight
        # workers, reap abandoned queued jobs from other clients' deques.
        for job in list(self._cold.values()):
            self._prune_job(job)
        # Upgrade jobs this client alone was interested in are withdrawn
        # (queued ones die at pop time, running ones via the cancel flag).
        for spec in list(self._spec.values()):
            spec.interested.discard(client)
            spec.subscribers = [
                (c, r) for c, r in spec.subscribers if c is not client]
            if not spec.interested and not spec.withdrawn:
                self._withdraw_spec(spec)
        client.upgrades.clear()

    def _prune_job(self, job: _ColdJob) -> None:
        """Drop dead waiters; cancel the underlying work when none remain."""
        job.waiters = [w for w in job.waiters
                       if not w.cancelled and not w.client.closed]
        if job.waiters:
            return
        if job.dispatched:
            # Cooperative: the worker notices at its next pass boundary.
            try:
                Path(job.cancel_path).touch()
            except OSError:
                pass
            return
        # Undispatched and nobody waiting: reap it now so it stops
        # consuming queue_limit capacity against other clients.
        if job.owner is not None:
            try:
                job.owner.pending.remove(job)
            except ValueError:
                pass
            else:
                self._queued -= 1
            job.owner = None
        self._cold.pop(job.fingerprint, None)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _enqueue(self, client: _Client, job: _ColdJob) -> None:
        client.pending.append(job)
        job.owner = client
        self._queued += 1
        if not client.in_rr:
            self._rr.append(client)
            client.in_rr = True
        self._work.set()

    def _pop_next_job(self) -> Optional[_ColdJob]:
        """Round-robin pop: one job from the head client, then rotate."""
        while self._rr:
            client = self._rr.popleft()
            if not client.pending:
                client.in_rr = False
                continue
            job = client.pending.popleft()
            job.owner = None
            if client.pending:
                self._rr.append(client)
            else:
                client.in_rr = False
            self._queued -= 1
            if not job.live_waiters():
                self._cold.pop(job.fingerprint, None)
                continue
            return job
        return None

    async def _dispatch_loop(self) -> None:
        while True:
            await self._work.wait()
            if self._closing and self._queued == 0:
                return
            # Width throttle first: a job stays *in the queue* (visible to
            # admission control as depth) until a compile slot is free —
            # at most `workers` in flight (1 for the thread mode).  Slot
            # exhaustion parks on an event _run_job sets when one frees,
            # rather than polling.
            if self._in_flight >= max(self.config.workers, 1):
                # Arm the event *before* any suspension: a job finishing
                # during the preemption hop below sets it, and clearing
                # afterwards would eat that wakeup with no running job
                # left to ever set it again (dispatcher deadlock).
                self._slot_free.clear()
                if self._queued and self._spec_running:
                    # Cold work is waiting on a slot a background upgrade
                    # holds: preempt it cooperatively (it requeues), so
                    # speculation can never starve the cold lane.
                    await asyncio.get_running_loop().run_in_executor(
                        None, self._preempt_specs)
                await self._slot_free.wait()
                continue
            job = self._pop_next_job()
            if job is None:
                # Strict priority: the background lane only gets a slot
                # when the cold queue is empty (and never during drain).
                # Multi-worker pools additionally keep one slot in
                # reserve — an arriving cold request starts immediately
                # instead of paying a preemption round trip; with a
                # single worker, preemption is the mechanism.
                workers = max(self.config.workers, 1)
                headroom = workers - 1 if workers > 1 else 1
                spec = None
                if not self._closing and self._in_flight < headroom:
                    spec = self._pop_next_spec()
                if spec is not None:
                    spec.dispatched = True
                    self._in_flight += 1
                    task = asyncio.create_task(self._run_spec_job(spec))
                    self._job_tasks.add(task)
                    task.add_done_callback(self._job_tasks.discard)
                    continue
                self._work.clear()
                if self._closing:
                    return
                continue
            job.dispatched = True
            self._in_flight += 1
            self.metrics.queue_wait.record(time.perf_counter() - job.created_at)
            task = asyncio.create_task(self._run_job(job))
            self._job_tasks.add(task)
            task.add_done_callback(self._job_tasks.discard)

    async def _run_job(self, job: _ColdJob) -> None:
        loop = asyncio.get_running_loop()
        payload = (job.fingerprint, job.program_dict, job.options,
                   job.cancel_path)
        if job.tier != TIER_FULL:
            payload += (job.tier,)
        outcome: Optional[Tuple] = None
        failure: Optional[str] = None
        try:
            for attempt in range(self.config.dispatch_retries + 1):
                epoch = self._pool_epoch
                try:
                    # Thread mode runs the very same worker entry point in
                    # this process: batch._WORKER_CACHE is never initialized
                    # here, so it compiles cache-less and the parent's put
                    # below keeps the stats single-counted.
                    executor = self._pool if self._pool is not None \
                        else self._thread_pool
                    outcome = await loop.run_in_executor(
                        executor, _worker_compile, payload)
                    break
                except BrokenProcessPool:
                    await self._rebuild_pool(epoch)
                    if attempt == self.config.dispatch_retries:
                        failure = "worker pool kept breaking under this job"
                except Exception as exc:  # compile bug / bad program
                    failure = f"{type(exc).__name__}: {exc}"
                    break
        finally:
            self._in_flight -= 1
            self._slot_free.set()
            self._work.set()

        await loop.run_in_executor(None, _withdraw_cancel_flag, job.cancel_path)

        if outcome is None:
            self._drop_cold(job)
            await self._finish_job(job, None, 0.0, None, failed=failure
                                   or "dispatch failed")
            return

        _fp, text, elapsed, result_metrics, stats_delta, pid = outcome
        self._seen_worker_pids.add(pid)
        if pid != os.getpid() and self.cache.root is not None:
            # Shared-store worker: its counter movement is real store
            # activity whether or not the compile finished — absorb it
            # exactly once, cancelled jobs included.
            self.cache.stats.absorb(stats_delta)
        if text is None:
            # The worker honored the cancel flag.  If someone attached
            # after the flag was withdrawn too late, compile again for
            # them; otherwise everyone is gone and the job just ends.
            survivors = job.live_waiters()
            if survivors and job.requeues < 3:
                job.requeues += 1
                job.dispatched = False
                self._cold[job.fingerprint] = job
                self._enqueue(survivors[0].client, job)
                return
            self._drop_cold(job)
            await self._finish_job(job, None, elapsed, None, cancelled=True)
            return

        if pid != os.getpid() and self.cache.root is not None:
            # Shared-store worker: bytes are already on disk and counted
            # (absorbed above) — just make the key hot here (memory-only,
            # loop-safe).
            self.cache.promote(job.fingerprint, text)
        elif job.tier != TIER_FULL:
            # Tiered publish: rank-checked so the fast artifact can never
            # clobber a full one a concurrent writer landed first.
            await loop.run_in_executor(
                None, self.cache.put_tiered, job.fingerprint, text, job.tier)
        else:
            # Thread-mode compile or private store: the put publishes to
            # disk, so it takes the executor hop.
            await loop.run_in_executor(
                None, self.cache.put, job.fingerprint, text)
        # Only now drop the dedupe entry: the artifact is resident, so a
        # request landing in any suspension above either attached to this
        # job (answered below) or will hit the cache.
        self._drop_cold(job)
        self.metrics.worker_completed(pid)
        self._remember_metrics(job.fingerprint, result_metrics)
        await self._finish_job(job, text, elapsed, result_metrics)
        # The fast tier just answered; hand the full-effort recompile to
        # the background lane (after the responses above, so an upgrade
        # frame can never precede its compile response on the wire).
        if (job.tier != TIER_FULL and self.config.speculate
                and not self._closing):
            live = job.live_waiters()
            if live:
                self._enqueue_spec(
                    job.fingerprint, job.program_dict, job.options,
                    job.label,
                    interested={w.client for w in live},
                    subscribers=[(w.client, w.request_id)
                                 for w in live if w.want_upgrade],
                )

    def _drop_cold(self, job: _ColdJob) -> None:
        """Retire a job's dedupe entry (unless a requeue replaced it)."""
        if self._cold.get(job.fingerprint) is job:
            del self._cold[job.fingerprint]

    async def _finish_job(self, job: _ColdJob, text: Optional[str],
                          elapsed: float, result_metrics: Optional[Dict],
                          failed: Optional[str] = None,
                          cancelled: bool = False) -> None:
        now = time.perf_counter()
        for waiter in job.waiters:
            alive = not waiter.cancelled and not waiter.client.closed
            waiter.client.waiting.pop(waiter.request_id, None)
            if not alive:
                continue
            if cancelled:
                waiter.cancelled = True
                self.metrics.incr("cancelled")
                await self._send(waiter.client, error_frame(
                    "compile", waiter.request_id, E_CANCELLED,
                    "compile cancelled"))
            elif failed is not None:
                self.metrics.incr("failed")
                await self._send(waiter.client, error_frame(
                    "compile", waiter.request_id, E_COMPILE, failed))
            else:
                frame = self._result_frame(
                    waiter.request_id, waiter.want, job.fingerprint, text,
                    cached=False,
                    queued_ms=(now - waiter.admitted_at - elapsed) * 1e3,
                    compile_ms=elapsed * 1e3,
                    known_metrics=result_metrics,
                    tier=(job.tier if (self.config.speculate
                                       or waiter.want_upgrade) else None),
                )
                self.metrics.incr("completed")
                self.metrics.cold_latency.record(now - waiter.admitted_at)
                await self._send(waiter.client, frame)

    async def _rebuild_pool(self, epoch: int) -> None:
        async with self._pool_lock:
            if self._pool_epoch != epoch or self._pool is None:
                return
            broken = self._pool
            self._pool = self._new_pool()
            self._pool_epoch += 1
            self.metrics.incr("worker_restarts")
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: broken.shutdown(wait=False, cancel_futures=True))

    # ------------------------------------------------------------------
    # Speculative lane
    # ------------------------------------------------------------------
    @staticmethod
    def _tier_of(text: str) -> str:
        """Tier of a stored artifact, with a substring fast path: an
        artifact with no ``tier`` key at all (v1/v2, or any full-effort
        document) skips the JSON parse on the warm lane."""
        if '"tier":' not in text:
            return TIER_FULL
        return artifact_tier(text)

    @staticmethod
    def _live_interest(job: _SpecJob) -> bool:
        return any(not c.closed for c in job.interested)

    def _enqueue_spec(self, fingerprint: str, program_dict: Dict,
                      options: Dict, label: str,
                      interested: Set[_Client],
                      subscribers: List[Tuple[_Client, str]]) -> None:
        """Admit one background upgrade job (or merge into the in-flight
        one for this fingerprint).  Over-budget admissions are counted
        and dropped immediately — the queue is a cap, not a buffer."""
        job = self._spec.get(fingerprint)
        if job is not None:
            # Fresh interest revives a withdrawn-but-unreaped job.
            job.withdrawn = False
            job.interested.update(c for c in interested if not c.closed)
            for client, rid in subscribers:
                if (client, rid) not in job.subscribers:
                    job.subscribers.append((client, rid))
                    client.upgrades[rid] = job
            return
        if len(self._spec_queue) >= self.config.speculative_limit:
            self.metrics.incr("spec_enqueued")
            self.metrics.incr("spec_dropped")
            return
        job = _SpecJob(
            fingerprint=fingerprint,
            program_dict=program_dict,
            options=options,
            label=label,
            cancel_path=str(
                self._cancel_dir / f"job-{next(self._cancel_seq)}.cancel"),
            enqueued_at=time.perf_counter(),
            interested={c for c in interested if not c.closed},
            subscribers=list(subscribers),
        )
        for client, rid in job.subscribers:
            client.upgrades[rid] = job
        self._spec[fingerprint] = job
        self._spec_queue.append(job)
        self.metrics.incr("spec_enqueued")
        self._work.set()

    def _pop_next_spec(self) -> Optional[_SpecJob]:
        """Next live background job; withdrawn ones are reaped (and
        accounted) here rather than searched out of the deque eagerly."""
        while self._spec_queue:
            job = self._spec_queue.popleft()
            if job.withdrawn or not self._live_interest(job):
                self._drop_spec(job)
                self.metrics.incr("spec_cancelled")
                continue
            return job
        return None

    def _withdraw_spec(self, job: _SpecJob) -> None:
        """Last interested client left: mark the job withdrawn.  Queued
        jobs die (and count) at pop time; a running one is flagged
        through the same cooperative cancel file as a cold compile."""
        job.withdrawn = True
        if job.dispatched:
            try:
                Path(job.cancel_path).touch()
            except OSError:
                pass

    def _preempt_specs(self) -> None:
        """Flag every running background upgrade to yield its slot to
        waiting cold work (blocking: dispatcher calls via the executor).
        Cooperative — the worker notices at its next pass boundary and
        the job requeues behind the cold queue."""
        for job in list(self._spec_running):
            job.preempted = True
            try:
                Path(job.cancel_path).touch()
            except OSError:
                pass

    def _drop_spec(self, job: _SpecJob) -> None:
        """Retire a background job's dedupe entry and id subscriptions."""
        if self._spec.get(job.fingerprint) is job:
            del self._spec[job.fingerprint]
        for client, rid in job.subscribers:
            if client.upgrades.get(rid) is job:
                del client.upgrades[rid]

    async def _run_spec_job(self, job: _SpecJob) -> None:
        loop = asyncio.get_running_loop()
        self._spec_running.add(job)
        payload = (job.fingerprint, job.program_dict, job.options,
                   job.cancel_path, "opt3")
        outcome: Optional[Tuple] = None
        try:
            for attempt in range(self.config.dispatch_retries + 1):
                epoch = self._pool_epoch
                try:
                    executor = self._pool if self._pool is not None \
                        else self._thread_pool
                    outcome = await loop.run_in_executor(
                        executor, _worker_compile, payload)
                    break
                except BrokenProcessPool:
                    await self._rebuild_pool(epoch)
                except Exception:
                    break   # compile bug: the opt-1 answer already stands
        except asyncio.CancelledError:
            # close() tore the task down mid-flight: account the job so
            # the speculative ledger reconciles across a shutdown.
            self.metrics.incr("spec_dropped")
            self._drop_spec(job)
            raise
        finally:
            self._spec_running.discard(job)
            self._in_flight -= 1
            self._slot_free.set()
            self._work.set()

        await loop.run_in_executor(None, _withdraw_cancel_flag,
                                   job.cancel_path)

        if outcome is None:
            self._drop_spec(job)
            self.metrics.incr("spec_dropped")
            await self._notify_upgrade(job, ok=False, state="failed")
            return

        _fp, text, elapsed, _result_metrics, stats_delta, pid = outcome
        self._seen_worker_pids.add(pid)
        shared = pid != os.getpid() and self.cache.root is not None
        if shared:
            self.cache.stats.absorb(stats_delta)
        if text is None:
            # The worker honored the cancel flag (withdrawal or cold-lane
            # preemption).  Withdrawn jobs end here; preempted ones with
            # live interest get back in line behind the cold queue.
            job.dispatched = False
            job.preempted = False
            if job.withdrawn or not self._live_interest(job):
                self._drop_spec(job)
                self.metrics.incr("spec_cancelled")
                return
            if job.requeues < 3:
                job.requeues += 1
                self._spec_queue.append(job)
                self._work.set()
                return
            self._drop_spec(job)
            self.metrics.incr("spec_dropped")
            await self._notify_upgrade(job, ok=False, state="dropped")
            return

        if shared:
            # The worker ran the compare-and-swap against the shared
            # store itself; its absorbed counter delta says how it went.
            landed = stats_delta.get("upgraded", 0) > 0
            if landed:
                self.cache.promote(job.fingerprint, text)
        else:
            landed = await loop.run_in_executor(
                None, self.cache.upgrade, job.fingerprint, text)
        self._drop_spec(job)
        self.metrics.worker_completed(pid)
        if landed:
            gap = time.perf_counter() - job.enqueued_at
            self.metrics.incr("spec_upgraded")
            self.metrics.upgrade_latency.record(gap)
            await self._notify_upgrade(job, ok=True, upgrade_ms=gap * 1e3)
        else:
            self.metrics.incr("spec_stale")
            await self._notify_upgrade(job, ok=False, state="stale")

    async def _notify_upgrade(self, job: _SpecJob, ok: bool,
                              state: Optional[str] = None,
                              upgrade_ms: Optional[float] = None) -> None:
        """Push the ``upgrade`` frame to every subscriber still around."""
        for client, rid in job.subscribers:
            if client.closed:
                continue
            frame: Dict = {"op": "upgrade", "id": rid, "ok": ok,
                           "fingerprint": job.fingerprint}
            if ok:
                frame["tier"] = TIER_FULL
                frame["upgrade_ms"] = round(upgrade_ms or 0.0, 3)
            else:
                frame["state"] = state
            await self._send(client, frame)

    # ------------------------------------------------------------------
    # Resolution / response assembly
    # ------------------------------------------------------------------
    async def _resolve(self, spec: Dict) -> Tuple[str, Dict, Dict, str]:
        """Spec → (fingerprint, options, program payload, label), memoized
        so repeat traffic skips program construction entirely.

        Memo hits return synchronously; a miss builds the program and
        hashes its canonical form on the default thread executor so a
        heavy first-time registry spec cannot stall the warm lane (two
        racing misses on one key both compute — the result is
        deterministic, so the second write is a harmless overwrite).
        """
        key = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        hit = self._resolve_memo.get(key)
        if hit is not None:
            self._resolve_memo.move_to_end(key)
            return hit
        entry = await asyncio.get_running_loop().run_in_executor(
            None, self._resolve_uncached, spec)
        self._resolve_memo[key] = entry
        while len(self._resolve_memo) > self.config.resolve_memo_entries:
            self._resolve_memo.popitem(last=False)
        return entry

    @staticmethod
    def _resolve_uncached(spec: Dict) -> Tuple[str, Dict, Dict, str]:
        job = resolve_spec(spec)
        return (job.fingerprint(), job.options,
                program_to_dict(job.program), job.label)

    def _remember_metrics(self, fingerprint: str,
                          result_metrics: Optional[Dict]) -> None:
        if result_metrics is None:
            return
        self._metrics_memo[fingerprint] = result_metrics
        self._metrics_memo.move_to_end(fingerprint)
        while len(self._metrics_memo) > self.config.metrics_memo_entries:
            self._metrics_memo.popitem(last=False)

    def _result_frame(self, request_id: str, want: str, fingerprint: str,
                      text: str, cached: bool, queued_ms: float,
                      compile_ms: float,
                      known_metrics: Optional[Dict] = None,
                      tier: Optional[str] = None) -> Optional[Dict]:
        """Build one success frame; ``None`` if the artifact is corrupt."""
        frame = {
            "op": "compile", "id": request_id, "ok": True,
            "fingerprint": fingerprint, "cached": cached,
            "queued_ms": round(max(queued_ms, 0.0), 3),
            "compile_ms": round(compile_ms, 3),
        }
        if tier is not None:
            frame["tier"] = tier
        if want in ("metrics", "artifact"):
            metrics = known_metrics
            if metrics is None:
                metrics = self._metrics_memo.get(fingerprint)
                if metrics is not None:
                    self._metrics_memo.move_to_end(fingerprint)
            if metrics is None:
                try:
                    metrics = loads_artifact(text).metrics
                except (ValueError, KeyError, TypeError, AttributeError):
                    return None
                self._remember_metrics(fingerprint, metrics)
            frame["metrics"] = metrics
        if want == "artifact":
            frame["artifact"] = json.loads(text)
        return frame

    async def _send(self, client: _Client, frame: Dict) -> bool:
        if client.closed:
            return False
        async with client.send_lock:
            if client.closed:
                return False
            try:
                client.writer.write(encode_frame(frame))
                await client.writer.drain()
                return True
            except (ConnectionError, RuntimeError, OSError):
                client.closed = True
                return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def worker_pids(self) -> List[int]:
        """Live pool worker pids (process mode), best effort."""
        if self._pool is None:
            return []
        try:
            return sorted(self._pool._processes.keys())
        except AttributeError:  # private layout changed: fall back
            return sorted(self._seen_worker_pids)

    def stats(self) -> Dict:
        snap = self.metrics.snapshot()
        # The daemon's own pid, so a cluster supervisor / soak harness can
        # target the node process behind a router without guessing.
        snap["pid"] = os.getpid()
        cache = self.cache.stats.as_dict()
        cache["hit_rate"] = (
            round(cache["hits"] / cache["lookups"], 4)
            if cache["lookups"] else None
        )
        snap["cache"] = cache
        snap["queue"] = {
            "depth": self._queued,
            "limit": self.config.queue_limit,
            "in_flight": self._in_flight,
            "cold_fingerprints": len(self._cold),
        }
        spec = snap.get("speculative", {})
        spec.update({
            "enabled": self.config.speculate,
            "queued": len(self._spec_queue),
            "in_flight": len(self._spec_running),
            "limit": self.config.speculative_limit,
        })
        snap["speculative"] = spec
        snap["connections"] = len(self._clients)
        snap["workers"] = {
            "mode": "process" if self.config.workers >= 1 else "thread",
            "configured": self.config.workers,
            "pids": self.worker_pids(),
            "restarts": self.metrics.get("worker_restarts"),
        }
        try:
            snap["open_fds"] = len(os.listdir("/proc/self/fd"))
        except OSError:
            snap["open_fds"] = None
        return snap


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------

class GatewayClient:
    """Asyncio client for the gateway protocol (CLI, benchmark, tests).

    Serial helpers (:meth:`compile`, :meth:`stats`, :meth:`ping`) do one
    round trip; :meth:`run_specs` pipelines a whole corpus with a bounded
    in-flight window and collects streamed responses by id.
    """

    #: Ceiling on out-of-band frames parked for a later request(); beyond
    #: it the oldest are dropped (e.g. cancelled-compile errors nobody
    #: will ever ask for), so a long-lived client cannot leak memory.
    STASH_LIMIT = 256

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._stash: "OrderedDict[str, Dict]" = OrderedDict()
        self.hello: Optional[Dict] = None

    def _stash_frame(self, frame: Dict) -> None:
        key = str(frame.get("id"))
        if frame.get("op") == "upgrade":
            # An upgrade push shares its id with the compile response it
            # trails; key it apart so neither can shadow the other.
            key = f"upgrade:{key}"
        self._stash[key] = frame
        while len(self._stash) > self.STASH_LIMIT:
            self._stash.popitem(last=False)

    @classmethod
    async def connect(cls, socket_path: Optional[str] = None,
                      host: str = "127.0.0.1", port: int = 0,
                      timeout: float = 10.0) -> "GatewayClient":
        if socket_path:
            opening = asyncio.open_unix_connection(
                socket_path, limit=MAX_FRAME_BYTES)
        else:
            opening = asyncio.open_connection(
                host, port, limit=MAX_FRAME_BYTES)
        reader, writer = await asyncio.wait_for(opening, timeout)
        client = cls(reader, writer)
        client.hello = await asyncio.wait_for(client._read_frame(), timeout)
        return client

    async def _read_frame(self) -> Dict:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("gateway closed the connection")
        return json.loads(line)

    async def _send(self, frame: Dict) -> None:
        self._writer.write(encode_frame(frame))
        await self._writer.drain()

    async def request(self, frame: Dict, timeout: float = 300.0) -> Dict:
        """One round trip; tolerates interleaved responses to other ids."""
        await self._send(frame)
        want_id = str(frame.get("id"))
        if want_id in self._stash:
            return self._stash.pop(want_id)
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"no response for id {want_id!r}")
            response = await asyncio.wait_for(self._read_frame(), remaining)
            if (str(response.get("id")) == want_id
                    and response.get("op") != "upgrade"):
                return response
            self._stash_frame(response)

    async def compile(self, spec: Dict, request_id: str = "c1",
                      want: str = "metrics", timeout: float = 300.0,
                      tenant: Optional[str] = None,
                      want_upgrade: bool = False) -> Dict:
        frame = {"op": "compile", "id": request_id, "spec": spec, "want": want}
        if tenant is not None:
            frame["tenant"] = tenant
        if want_upgrade:
            frame["want_upgrade"] = True
        return await self.request(frame, timeout=timeout)

    async def wait_upgrade(self, request_id: str,
                           timeout: float = 300.0) -> Dict:
        """Block until the ``upgrade`` push frame for ``request_id``
        arrives (the request must have been sent with ``want_upgrade``)."""
        key = f"upgrade:{request_id}"
        if key in self._stash:
            return self._stash.pop(key)
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"no upgrade frame for id {request_id!r}")
            frame = await asyncio.wait_for(self._read_frame(), remaining)
            if (frame.get("op") == "upgrade"
                    and str(frame.get("id")) == str(request_id)):
                return frame
            self._stash_frame(frame)

    async def stats(self, timeout: float = 30.0) -> Dict:
        response = await self.request({"op": "stats", "id": "_stats"},
                                      timeout=timeout)
        return response["stats"]

    async def ping(self, timeout: float = 30.0) -> Dict:
        return await self.request({"op": "ping", "id": "_ping"},
                                  timeout=timeout)

    async def cancel(self, request_id: str, timeout: float = 30.0) -> Dict:
        """Cancel a compile; returns the cancel acknowledgement frame."""
        await self._send({"op": "cancel", "id": request_id})
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            response = await asyncio.wait_for(self._read_frame(), remaining)
            if response.get("op") == "cancel" and \
                    str(response.get("id")) == str(request_id):
                return response
            self._stash_frame(response)

    async def run_specs(self, specs: List[Dict], want: str = "metrics",
                        window: int = 32, id_prefix: str = "q",
                        timeout: float = 600.0,
                        tenant: Optional[str] = None,
                        want_upgrade: bool = False,
                        ) -> Tuple[List[Optional[Dict]], List[float]]:
        """Pipeline ``specs`` with ≤ ``window`` in flight.

        Returns ``(responses_by_input_index, per_request_latency_seconds)``;
        responses stream back in completion order and are re-keyed by id.
        """
        results: List[Optional[Dict]] = [None] * len(specs)
        latencies: List[float] = [0.0] * len(specs)
        sent_at: Dict[str, Tuple[int, float]] = {}
        next_index = 0
        outstanding = 0
        deadline = time.monotonic() + timeout

        async def send_next():
            nonlocal next_index, outstanding
            rid = f"{id_prefix}{next_index}"
            sent_at[rid] = (next_index, time.perf_counter())
            frame = {"op": "compile", "id": rid,
                     "spec": specs[next_index], "want": want}
            if tenant is not None:
                frame["tenant"] = tenant
            if want_upgrade:
                frame["want_upgrade"] = True
            await self._send(frame)
            next_index += 1
            outstanding += 1

        while next_index < len(specs) and outstanding < window:
            await send_next()
        while outstanding:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("corpus run timed out")
            response = await asyncio.wait_for(self._read_frame(), remaining)
            rid = str(response.get("id"))
            if rid not in sent_at or response.get("op") == "upgrade":
                self._stash_frame(response)
                continue
            index, t0 = sent_at.pop(rid)
            results[index] = response
            latencies[index] = time.perf_counter() - t0
            outstanding -= 1
            if next_index < len(specs):
                await send_next()
        return results, latencies

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except Exception:
            pass


def prepare_unix_path(path: str) -> None:
    """Make ``path`` bindable: remove a *stale* socket file, but raise
    ``OSError(EADDRINUSE)`` if a live gateway is already listening there.
    A path that exists but is not a socket (a typo'd data file) is never
    touched — the bind fails instead of the file being deleted."""
    import errno
    import socket as socket_module
    import stat

    if not os.path.exists(path):
        return
    if not stat.S_ISSOCK(os.stat(path).st_mode):
        raise OSError(
            errno.EEXIST,
            f"{path} exists and is not a socket; refusing to replace it")
    probe = socket_module.socket(socket_module.AF_UNIX,
                                 socket_module.SOCK_STREAM)
    try:
        probe.settimeout(0.5)
        probe.connect(path)
    except (ConnectionRefusedError, socket_module.timeout, OSError):
        os.unlink(path)  # stale: nobody home
    else:
        raise OSError(errno.EADDRINUSE,
                      f"a gateway is already listening on {path}")
    finally:
        probe.close()
